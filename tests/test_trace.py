"""Tests for the trace infrastructure (repro.sim.trace) and integration."""

import json

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.sim.trace import NullTracer, TraceEvent, Tracer
from repro.workloads.synthetic import ChainTasks, SharedReadTasks, UniformTasks


class TestTracer:
    def test_span_recorded(self):
        t = Tracer()
        t.span("task", "t0", "lane0", 10, 50, trips=64)
        assert len(t.events) == 1
        e = t.events[0]
        assert e.duration == 40
        assert e.meta["trips"] == 64

    def test_instant_has_zero_duration(self):
        t = Tracer()
        t.instant("steal", "s", "lane1", 7)
        assert t.events[0].duration == 0.0
        assert t.events[0].end is None

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            Tracer().span("task", "x", "lane0", 10, 5)

    def test_null_tracer_records_nothing(self):
        t = NullTracer()
        t.span("task", "x", "lane0", 0, 1)
        t.instant("i", "x", "lane0", 0)
        assert t.events == []

    def test_queries(self):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 10)
        t.span("task", "b", "lane0", 10, 30)
        t.span("config", "c", "lane1", 0, 5)
        assert t.busy_time("lane0") == 30
        assert t.busy_time("lane1", "config") == 5
        assert t.lanes() == ["lane0", "lane1"]
        assert len(t.by_kind("task")) == 2
        assert t.summarize() == {"task": 2, "config": 1}

    def test_chrome_trace_format(self):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 10)
        t.instant("steal", "s", "lane1", 3)
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        metas = [e for e in events if e.get("ph") == "M"]
        assert len(spans) == 1 and spans[0]["dur"] == 10
        assert len(instants) == 1
        assert len(metas) == 2  # two lanes named
        json.dumps(doc)  # serializable

    def test_write_chrome_trace(self, tmp_path):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 1)
        path = tmp_path / "trace.json"
        t.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


class TestDeltaTracing:
    def test_disabled_by_default(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program())
        assert result.trace is None

    def test_task_spans_cover_all_tasks(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=6).build_program(), trace=True)
        tasks = result.trace.by_kind("task")
        assert len(tasks) == 6
        assert all(e.duration > 0 for e in tasks)

    def test_config_spans_present(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        assert result.trace.by_kind("config")

    def test_shared_read_instants(self):
        result = Delta(default_delta_config(lanes=2)).run(
            SharedReadTasks(num_tasks=6).build_program(), trace=True)
        shared = result.trace.by_kind("shared-read")
        assert len(shared) == 6
        assert any(e.meta["hit"] for e in shared)

    def test_pipelined_tasks_overlap_in_trace(self):
        result = Delta(default_delta_config(lanes=4)).run(
            ChainTasks(depth=4, trips=2048).build_program(), trace=True)
        spans = sorted(result.trace.by_kind("task"), key=lambda e: e.start)
        overlaps = any(a.end > b.start
                       for a, b in zip(spans, spans[1:]))
        assert overlaps, "chain stages should overlap when pipelined"


class TestChromeTraceSchema:
    """The exported JSON must be valid Chrome/Perfetto trace format."""

    def _trace(self):
        t = Tracer()
        t.span("task", "a", "lane1", 0, 10, trips=64)
        t.span("config", "c", "lane0", 2, 5)
        t.instant("steal", "s", "lane1", 3)
        return t

    def test_span_events_are_complete_events(self):
        doc = self._trace().to_chrome_trace()
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 2
        for event in spans:
            assert set(event) >= {"name", "cat", "pid", "tid", "ts",
                                  "dur", "args"}
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)
            assert event["dur"] >= 0 and event["ts"] >= 0

    def test_instant_events_are_thread_scoped(self):
        doc = self._trace().to_chrome_trace()
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert "dur" not in instants[0]

    def test_thread_name_metadata_maps_sorted_lanes(self):
        doc = self._trace().to_chrome_trace()
        metas = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert all(e["name"] == "thread_name" for e in metas)
        named = {e["tid"]: e["args"]["name"] for e in metas}
        assert named == {0: "lane0", 1: "lane1"}  # sorted lane order

    def test_span_meta_lands_in_args(self):
        doc = self._trace().to_chrome_trace()
        task = next(e for e in doc["traceEvents"] if e.get("cat") == "task")
        assert task["args"] == {"trips": 64}

    def test_display_time_unit_present(self):
        doc = self._trace().to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == self._trace().to_chrome_trace()


class TestDisabledTracer:
    def test_null_tracer_exports_empty_document(self):
        doc = NullTracer().to_chrome_trace()
        assert doc["traceEvents"] == []
        json.dumps(doc)

    def test_null_tracer_queries_are_empty(self):
        t = NullTracer()
        t.span("task", "x", "lane0", 0, 5)
        t.instant("i", "x", "lane0", 0)
        assert t.lanes() == []
        assert t.busy_time("lane0") == 0.0
        assert t.summarize() == {}
        assert not t.enabled

    def test_disabled_tracer_still_validates_nothing(self):
        # A disabled tracer must not even raise on a backwards span —
        # the no-op contract means zero work on the hot path.
        NullTracer().span("task", "x", "lane0", 10, 5)


class TestStaticTracing:
    def test_phase_and_task_spans(self):
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        assert len(result.trace.by_kind("task")) == 4
        assert len(result.trace.by_kind("phase")) == 1

    def test_task_spans_within_run(self):
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        for e in result.trace.by_kind("task"):
            assert 0 <= e.start <= e.end <= result.cycles


class TestTracingWithSanitizer:
    def test_trace_identical_under_sanitizer(self):
        """The sanitizer observes the same events the tracer records but
        must not perturb them: a traced, sanitized run produces exactly
        the timeline of a traced, unsanitized one."""
        w = UniformTasks(num_tasks=6)
        plain = Delta(default_delta_config(lanes=2)).run(
            w.build_program(), trace=True)
        sanitized = Delta(default_delta_config(lanes=2).with_sanitize(True)
                          ).run(w.build_program(), trace=True)

        def flat(trace):
            # Task names carry the process-global task id (uniform#101);
            # strip it so two builds of the same program compare equal.
            return [(e.kind, e.name.split("#")[0], e.lane, e.start, e.end,
                     sorted(e.meta)) for e in trace.events]

        assert flat(sanitized.trace) == flat(plain.trace)
