"""Tests for the trace infrastructure (repro.sim.trace) and integration."""

import json

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.sim.trace import NullTracer, TraceEvent, Tracer
from repro.workloads.synthetic import ChainTasks, SharedReadTasks, UniformTasks


class TestTracer:
    def test_span_recorded(self):
        t = Tracer()
        t.span("task", "t0", "lane0", 10, 50, trips=64)
        assert len(t.events) == 1
        e = t.events[0]
        assert e.duration == 40
        assert e.meta["trips"] == 64

    def test_instant_has_zero_duration(self):
        t = Tracer()
        t.instant("steal", "s", "lane1", 7)
        assert t.events[0].duration == 0.0
        assert t.events[0].end is None

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            Tracer().span("task", "x", "lane0", 10, 5)

    def test_null_tracer_records_nothing(self):
        t = NullTracer()
        t.span("task", "x", "lane0", 0, 1)
        t.instant("i", "x", "lane0", 0)
        assert t.events == []

    def test_queries(self):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 10)
        t.span("task", "b", "lane0", 10, 30)
        t.span("config", "c", "lane1", 0, 5)
        assert t.busy_time("lane0") == 30
        assert t.busy_time("lane1", "config") == 5
        assert t.lanes() == ["lane0", "lane1"]
        assert len(t.by_kind("task")) == 2
        assert t.summarize() == {"task": 2, "config": 1}

    def test_chrome_trace_format(self):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 10)
        t.instant("steal", "s", "lane1", 3)
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        metas = [e for e in events if e.get("ph") == "M"]
        assert len(spans) == 1 and spans[0]["dur"] == 10
        assert len(instants) == 1
        assert len(metas) == 2  # two lanes named
        json.dumps(doc)  # serializable

    def test_write_chrome_trace(self, tmp_path):
        t = Tracer()
        t.span("task", "a", "lane0", 0, 1)
        path = tmp_path / "trace.json"
        t.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


class TestDeltaTracing:
    def test_disabled_by_default(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program())
        assert result.trace is None

    def test_task_spans_cover_all_tasks(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=6).build_program(), trace=True)
        tasks = result.trace.by_kind("task")
        assert len(tasks) == 6
        assert all(e.duration > 0 for e in tasks)

    def test_config_spans_present(self):
        result = Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        assert result.trace.by_kind("config")

    def test_shared_read_instants(self):
        result = Delta(default_delta_config(lanes=2)).run(
            SharedReadTasks(num_tasks=6).build_program(), trace=True)
        shared = result.trace.by_kind("shared-read")
        assert len(shared) == 6
        assert any(e.meta["hit"] for e in shared)

    def test_pipelined_tasks_overlap_in_trace(self):
        result = Delta(default_delta_config(lanes=4)).run(
            ChainTasks(depth=4, trips=2048).build_program(), trace=True)
        spans = sorted(result.trace.by_kind("task"), key=lambda e: e.start)
        overlaps = any(a.end > b.start
                       for a, b in zip(spans, spans[1:]))
        assert overlaps, "chain stages should overlap when pipelined"


class TestStaticTracing:
    def test_phase_and_task_spans(self):
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        assert len(result.trace.by_kind("task")) == 4
        assert len(result.trace.by_kind("phase")) == 1

    def test_task_spans_within_run(self):
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program(), trace=True)
        for e in result.trace.by_kind("task"):
            assert 0 <= e.start <= e.end <= result.cycles
