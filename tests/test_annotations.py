"""Unit tests for dependence annotations (repro.core.annotations)."""

import pytest

from repro.core.annotations import ReadSpec, WorkHint, WriteSpec


class TestReadSpec:
    def test_plain_read(self):
        spec = ReadSpec(nbytes=1024)
        assert spec.nbytes == 1024
        assert not spec.shared
        assert spec.locality == 1.0
        assert spec.region is None

    def test_shared_read_requires_region(self):
        with pytest.raises(ValueError, match="region"):
            ReadSpec(nbytes=64, shared=True)

    def test_shared_read_with_region(self):
        spec = ReadSpec(nbytes=64, region="table", shared=True)
        assert spec.region == "table"

    def test_private_read_may_name_region(self):
        spec = ReadSpec(nbytes=64, region="mine")
        assert not spec.shared

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            ReadSpec(nbytes=-1)

    def test_zero_bytes_allowed(self):
        assert ReadSpec(nbytes=0).nbytes == 0

    @pytest.mark.parametrize("locality", [-0.1, 1.1, 2.0])
    def test_locality_out_of_range(self, locality):
        with pytest.raises(ValueError, match="locality"):
            ReadSpec(nbytes=1, locality=locality)

    def test_frozen(self):
        spec = ReadSpec(nbytes=8)
        with pytest.raises(AttributeError):
            spec.nbytes = 16  # type: ignore[misc]


class TestWriteSpec:
    def test_basic(self):
        spec = WriteSpec(nbytes=256, locality=0.5)
        assert spec.nbytes == 256

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WriteSpec(nbytes=-4)

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            WriteSpec(nbytes=4, locality=1.5)


class TestWorkHint:
    def test_callable_estimate(self):
        hint = WorkHint(lambda args: args["n"] * 2)
        assert hint({"n": 21}) == 42.0

    def test_result_coerced_to_float(self):
        hint = WorkHint(lambda args: 7)
        assert isinstance(hint({}), float)

    def test_negative_estimate_rejected(self):
        hint = WorkHint(lambda args: -1)
        with pytest.raises(ValueError, match="work estimate"):
            hint({})

    def test_zero_estimate_allowed(self):
        assert WorkHint(lambda args: 0)({}) == 0.0
