"""Property-based tests over randomly generated programs and graphs.

These are the repository's strongest correctness guarantees:

- *Execution equivalence*: for arbitrary dependence-correct task graphs,
  Delta (under any feature combination) executes exactly the task set the
  static expansion produces, with the same functional result, and always
  terminates (no scheduling deadlock).
- *Mapper validity*: arbitrary well-formed DFGs map to placements that
  respect FU capabilities and routes that are contiguous mesh paths, with
  an II no better than the analytic lower bounds.
- *Kernel invariants*: stores preserve FIFO order; bandwidth servers never
  exceed their configured rate.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.config import FabricConfig, FeatureFlags, default_delta_config
from repro.arch.dfg import Dfg, Op
from repro.arch.mapper import Mapper
from repro.baseline.static import StaticParallel
from repro.arch.config import default_baseline_config
from repro.core.delta import Delta
from repro.core.program import Program, expand_program
from repro.core.task import TaskType
from repro.arch.dfg import dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.sim import BandwidthServer, Environment, Store


# ------------------------------------------------------ random programs

@st.composite
def random_program_spec(draw):
    """A dependence-correct random task graph description."""
    n = draw(st.integers(min_value=1, max_value=14))
    tasks = []
    for i in range(n):
        trips = draw(st.integers(min_value=1, max_value=400))
        write_kb = draw(st.sampled_from([0, 64, 256, 1024]))
        dep_kind = "none"
        dep_target = None
        if i > 0:
            dep_kind = draw(st.sampled_from(["none", "after", "stream"]))
            if dep_kind != "none":
                dep_target = draw(st.integers(min_value=0, max_value=i - 1))
        shared = draw(st.booleans())
        tasks.append((trips, write_kb, dep_kind, dep_target, shared))
    return tasks


def build_program_from_spec(spec):
    state = {"ran": []}

    def kernel(ctx, args):
        ctx.state["ran"].append(args["i"])

    task_type = TaskType(
        name="rand",
        dfg=dot_product_dfg("rand"),
        kernel=kernel,
        trips=lambda args: args["trips"],
        reads=lambda args: tuple(
            [ReadSpec(nbytes=args["trips"] * 4)]
            + ([ReadSpec(nbytes=2048, region="shared", shared=True)]
               if args["shared"] else [])),
        writes=lambda args: (
            (WriteSpec(nbytes=args["wb"]),) if args["wb"] else ()),
        work_hint=WorkHint(lambda args: args["trips"]),
    )
    instances = []
    for i, (trips, write_b, dep_kind, dep_target, shared) in enumerate(spec):
        after = []
        stream_from = []
        if dep_kind == "after":
            after = [instances[dep_target]]
        elif dep_kind == "stream":
            stream_from = [instances[dep_target]]
        instances.append(task_type.instantiate(
            {"i": i, "trips": trips, "wb": write_b, "shared": shared},
            after=after, stream_from=stream_from))
    return Program("random", state, instances)


FEATURE_COMBOS = [
    FeatureFlags(False, False, False),
    FeatureFlags(True, False, False),
    FeatureFlags(True, True, False),
    FeatureFlags(True, True, True),
    FeatureFlags(True, True, True, config_affinity=True, prefetch=True),
]


@settings(max_examples=20, deadline=None)
@given(spec=random_program_spec(),
       combo=st.integers(min_value=0, max_value=len(FEATURE_COMBOS) - 1),
       lanes=st.sampled_from([1, 2, 4]))
def test_delta_executes_any_program(spec, combo, lanes):
    """Delta terminates and runs every task exactly once, any features."""
    program = build_program_from_spec(spec)
    config = default_delta_config(lanes=lanes,
                                  features=FEATURE_COMBOS[combo])
    result = Delta(config).run(program)
    assert sorted(result.state["ran"]) == list(range(len(spec)))
    assert result.tasks_executed == len(spec)


@settings(max_examples=15, deadline=None)
@given(spec=random_program_spec())
def test_delta_matches_static_expansion(spec):
    """Delta and the static baseline compute identical functional state."""
    delta_result = Delta(default_delta_config(lanes=2)).run(
        build_program_from_spec(spec))
    static_result = StaticParallel(default_baseline_config(lanes=2)).run(
        build_program_from_spec(spec))
    assert sorted(delta_result.state["ran"]) == \
        sorted(static_result.state["ran"])
    assert delta_result.tasks_executed == static_result.tasks_executed


@settings(max_examples=15, deadline=None)
@given(spec=random_program_spec())
def test_expansion_task_count_matches(spec):
    expanded = expand_program(build_program_from_spec(spec))
    assert expanded.task_count == len(spec)


@settings(max_examples=25, deadline=None)
@given(spec=random_program_spec())
def test_recovered_structure_matches_legacy_expansion(spec):
    """The TaskGraph IR's ExpandedProgram view equals expand_program on
    arbitrary dependence-correct programs (the compat contract every
    legacy consumer relies on)."""
    from repro.graph.ir import EdgeKind, recover_structure

    legacy = expand_program(build_program_from_spec(spec))
    graph = recover_structure(build_program_from_spec(spec))
    view = graph.as_expanded()
    assert view.task_count == legacy.task_count
    assert view.total_work == legacy.total_work
    assert [(t.type.name, t.depth, t.args) for t in view.tasks] == \
        [(t.type.name, t.depth, t.args) for t in legacy.tasks]
    assert [[t.args["i"] for t in p] for p in view.phases] == \
        [[t.args["i"] for t in p] for p in legacy.phases]
    # Typed edges mirror the spec's dependence choices exactly.
    n_after = sum(1 for t in spec if t[2] == "after")
    n_stream = sum(1 for t in spec if t[2] == "stream")
    assert len(graph.edges_of_kind(EdgeKind.AFTER)) == n_after
    assert len(graph.edges_of_kind(EdgeKind.STREAM)) == n_stream


@settings(max_examples=10, deadline=None)
@given(spec=random_program_spec(), seed=st.integers(0, 3))
def test_delta_deterministic_across_runs(spec, seed):
    config = default_delta_config(lanes=2, seed=seed)
    a = Delta(config).run(build_program_from_spec(spec))
    b = Delta(config).run(build_program_from_spec(spec))
    assert a.cycles == b.cycles


# ------------------------------------------------------ random DFGs

@st.composite
def random_dfg(draw):
    """A small well-formed DFG: DAG edges plus optional accumulators."""
    dfg = Dfg("random")
    n = draw(st.integers(min_value=2, max_value=10))
    ops = [Op.INPUT]
    for _ in range(n - 2):
        ops.append(draw(st.sampled_from(
            [Op.ADD, Op.MUL, Op.CMP, Op.SELECT, Op.SHIFT])))
    ops.append(Op.OUTPUT)
    ids = [dfg.add(op) for op in ops]
    # Chain backbone keeps the graph connected INPUT -> ... -> OUTPUT.
    for a, b in zip(ids, ids[1:]):
        dfg.connect(a, b)
    # Extra forward edges (respect id order => acyclic). Never originate
    # from the OUTPUT node (structurally illegal).
    extra = draw(st.integers(min_value=0, max_value=4))
    for _ in range(extra):
        src = draw(st.integers(min_value=0, max_value=n - 2))
        dst = draw(st.integers(min_value=src + 1, max_value=n - 1))
        dfg.connect(ids[src], ids[dst])
    # Optional self-recurrence on a middle node.
    if n > 2 and draw(st.booleans()):
        node = draw(st.integers(min_value=1, max_value=n - 2))
        dfg.connect(ids[node], ids[node], distance=1)
    return dfg


@settings(max_examples=30, deadline=None)
@given(dfg=random_dfg())
def test_mapper_produces_valid_mapping(dfg):
    mapper = Mapper(FabricConfig())
    Mapper.clear_cache()
    mapping = mapper.map(dfg)
    # Placement respects capabilities.
    for node_id, pos in mapping.placement.items():
        node = dfg.nodes[node_id]
        assert mapper.fabric.cells[pos].supports(node.fu_class)
    # Routes are contiguous and connect the right endpoints.
    for (src, dst, _idx), path in mapping.routes.items():
        assert path[0] == mapping.placement[src]
        assert path[-1] == mapping.placement[dst]
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
    # II bounds.
    assert mapping.ii >= mapping.resource_mii
    assert mapping.ii + 1e-9 >= mapping.recurrence_mii - 1e-6
    assert mapping.depth >= 1


# ------------------------------------------------------ kernel invariants

@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=30),
       capacity=st.integers(min_value=1, max_value=8))
def test_store_preserves_fifo_order(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
        store.close()

    def consumer():
        while True:
            got = yield store.get()
            if got is Store.END:
                return
            received.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=10000),
                      min_size=1, max_size=20),
       rate=st.floats(min_value=0.5, max_value=64))
def test_bandwidth_server_never_exceeds_rate(sizes, rate):
    env = Environment()
    server = BandwidthServer(env, bytes_per_cycle=rate, latency=0)
    done = []

    def proc():
        for size in sizes:
            server.transfer(size)
        yield server.transfer(0)  # fence: after all queued service
        done.append(env.now)

    env.process(proc())
    env.run()
    total = sum(sizes)
    assert env.now >= total / rate - 1e-6
    assert server.utilization() <= 1.0 + 1e-9
    assert server.total_bytes == total
