"""Frozen run fingerprints: the repo-wide bit-identity regression gate.

``tests/golden_fingerprints.json`` pins the :func:`comparison_fingerprint`
of every registered workload at two lane counts. Any change to simulated
timing, counter accounting, scheduling order — in either runtime, under
either event engine — shows up here as a named workload×config diff.

This is deliberately stricter than the golden *report* regression
(tests/test_golden_regression.py, 1% tolerance on parsed tables): a
fingerprint flip means bit-level behaviour moved. When a change is
intentional, regenerate the file::

    PYTHONPATH=src python tools/freeze_fingerprints.py

and review the diff like any other golden update. The fingerprints are
engine-independent by the equivalence contract
(tests/test_engine_equivalence.py), so the file does not encode
``REPRO_ENGINE``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch.config import default_delta_config
from repro.eval.runner import compare
from repro.util.fingerprint import comparison_fingerprint
from repro.workloads.registry import get_workload, workload_names

GOLDEN_PATH = Path(__file__).parent / "golden_fingerprints.json"

LANE_COUNTS = (2, 8)


def golden_points() -> list[tuple[str, int]]:
    """The frozen matrix: every registered workload × each lane count."""
    return [(name, lanes)
            for name in workload_names()
            for lanes in LANE_COUNTS]


def point_key(workload_name: str, lanes: int) -> str:
    return f"{workload_name}@lanes={lanes}"


def compute_fingerprint(workload_name: str, lanes: int) -> str:
    """The canonical fingerprint of one matrix point.

    Runs the ordinary Delta-vs-static comparison with a fresh program
    (``verify=False``: functional checking is a separate test concern) and
    digests both sides' :func:`result_stats`.
    """
    comparison = compare(get_workload(workload_name),
                         default_delta_config(lanes=lanes), verify=False)
    return comparison_fingerprint(comparison)


def load_golden() -> dict[str, str]:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)["fingerprints"]


def test_golden_file_covers_exactly_the_registry():
    """The frozen file and the workload registry agree on the matrix.

    A newly registered workload (or a renamed one) must be frozen too —
    this fails with the missing/stale keys listed rather than silently
    shrinking the regression surface.
    """
    golden = load_golden()
    expected = {point_key(name, lanes) for name, lanes in golden_points()}
    missing = sorted(expected - set(golden))
    stale = sorted(set(golden) - expected)
    assert not missing and not stale, (
        "golden_fingerprints.json is out of sync with the workload "
        f"registry.\n  missing: {missing}\n  stale: {stale}\n"
        "Regenerate: PYTHONPATH=src python tools/freeze_fingerprints.py")


@pytest.mark.parametrize("workload_name,lanes",
                         golden_points(),
                         ids=[point_key(n, l) for n, l in golden_points()])
def test_fingerprint_matches_golden(workload_name, lanes):
    """Each matrix point still produces its frozen fingerprint."""
    golden = load_golden()
    key = point_key(workload_name, lanes)
    actual = compute_fingerprint(workload_name, lanes)
    assert actual == golden[key], (
        f"bit-identity regression at {key}:\n"
        f"  frozen:  {golden[key]}\n"
        f"  current: {actual}\n"
        "Simulated behaviour changed for this workload/config. If the "
        "change is intentional, regenerate with "
        "PYTHONPATH=src python tools/freeze_fingerprints.py and commit "
        "the diff.")
