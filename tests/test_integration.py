"""Cross-module integration tests: whole-pipeline behaviours.

Each test exercises several subsystems together (machines + eval +
trace + energy + report sections) on fast micro workloads, checking the
invariants that individual unit tests cannot see.
"""

import dataclasses

import pytest

from repro.arch.config import (
    DramConfig,
    FeatureFlags,
    default_baseline_config,
    default_delta_config,
)
from repro.arch.energy import estimate_energy
from repro.baseline.software import SoftwareRuntime
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.program import expand_program
from repro.eval.runner import compare
from repro.workloads.synthetic import (
    ChainTasks,
    SharedReadTasks,
    SkewedTasks,
    SpawnTree,
    UniformTasks,
)


class TestCrossMachineConsistency:
    """The three machines must agree on everything functional."""

    @pytest.mark.parametrize("workload_factory", [
        lambda: UniformTasks(num_tasks=12),
        lambda: SkewedTasks(num_tasks=24),
        lambda: SharedReadTasks(num_tasks=12),
        lambda: ChainTasks(depth=4, trips=256),
        lambda: SpawnTree(depth=3),
    ], ids=["uniform", "skewed", "shared", "chain", "tree"])
    def test_same_task_count_everywhere(self, workload_factory):
        w = workload_factory()
        expected = expand_program(w.build_program()).task_count
        delta = Delta(default_delta_config(lanes=4)).run(w.build_program())
        static = StaticParallel(default_baseline_config(lanes=4)).run(
            w.build_program())
        software = SoftwareRuntime(default_delta_config(lanes=4)).run(
            w.build_program())
        assert delta.tasks_executed == expected
        assert static.tasks_executed == expected
        assert software.tasks_executed == expected
        for result in (delta, static, software):
            w.check(result.state)

    def test_busy_cycles_identical_across_machines(self):
        """Same tasks, same fabric: total busy cycles must match exactly
        (scheduling moves work around, never changes its amount)."""
        w = SkewedTasks(num_tasks=24)
        delta = Delta(default_delta_config(lanes=4)).run(w.build_program())
        static = StaticParallel(default_baseline_config(lanes=4)).run(
            w.build_program())
        assert sum(delta.lane_busy) == pytest.approx(sum(static.lane_busy))

    def test_counter_conservation_dispatch(self):
        w = SpawnTree(depth=3)
        result = Delta(default_delta_config(lanes=4)).run(w.build_program())
        c = result.counters
        assert c.get("dispatch.submitted") == c.get("dispatch.completed")
        assert c.get("dispatch.dispatched") == c.get("dispatch.completed")


class TestTraceEnergyConsistency:
    def test_trace_busy_matches_tracker(self):
        """Trace task spans must cover at least the tracked busy time
        (spans include stalls, tracker only fabric-active cycles)."""
        w = UniformTasks(num_tasks=8)
        result = Delta(default_delta_config(lanes=2)).run(
            w.build_program(), trace=True)
        for lane_id, busy in enumerate(result.lane_busy):
            span_time = result.trace.busy_time(f"lane{lane_id}")
            assert span_time >= busy * 0.99

    def test_trace_task_count_matches_result(self):
        w = SpawnTree(depth=3)
        result = Delta(default_delta_config(lanes=2)).run(
            w.build_program(), trace=True)
        assert len(result.trace.by_kind("task")) == result.tasks_executed

    def test_energy_consistent_with_traffic_ordering(self):
        """Less DRAM traffic (multicast on) must mean less DRAM energy."""
        w = SharedReadTasks(num_tasks=16)
        on = Delta(default_delta_config(lanes=4)).run(w.build_program())
        off_flags = FeatureFlags(multicast=False)
        off = Delta(default_delta_config(lanes=4,
                                         features=off_flags)).run(
            w.build_program())
        assert estimate_energy(on).dram < estimate_energy(off).dram


class TestBandwidthSensitivity:
    def test_tighter_dram_never_speeds_up(self):
        w = SkewedTasks(num_tasks=24)
        cycles = []
        for bpc in (32.0, 8.0, 2.0):
            cfg = dataclasses.replace(default_delta_config(lanes=4),
                                      dram=DramConfig(bytes_per_cycle=bpc))
            cycles.append(Delta(cfg).run(w.build_program()).cycles)
        assert cycles == sorted(cycles), \
            "cycles must not decrease as bandwidth shrinks"

    def test_multicast_benefit_grows_with_tight_bandwidth(self):
        w = SharedReadTasks(num_tasks=24, region_bytes=8192)
        ratios = []
        for bpc in (64.0, 8.0):
            base = dataclasses.replace(default_delta_config(lanes=4),
                                       dram=DramConfig(bytes_per_cycle=bpc))
            on = Delta(base).run(w.build_program()).cycles
            off = Delta(base.with_features(
                FeatureFlags(multicast=False))).run(
                w.build_program()).cycles
            ratios.append(off / on)
        assert ratios[1] > ratios[0]


class TestEvalPipeline:
    def test_compare_verifies_both_machines(self):
        comparison = compare(SkewedTasks(num_tasks=16),
                             default_delta_config(lanes=2))
        assert comparison.speedup > 0
        assert comparison.delta.tasks_executed == \
            comparison.static.tasks_executed

    def test_compare_catches_broken_workload(self):
        class Broken(SkewedTasks):
            def check(self, state):
                raise AssertionError("always wrong")

        with pytest.raises(AssertionError, match="always wrong"):
            compare(Broken(num_tasks=8), default_delta_config(lanes=2))


class TestScalingSanity:
    @pytest.mark.parametrize("factory", [
        lambda: SkewedTasks(num_tasks=32),
        lambda: SharedReadTasks(num_tasks=16),
    ], ids=["skewed", "shared"])
    def test_more_lanes_never_slower_delta(self, factory):
        w = factory()
        c2 = Delta(default_delta_config(lanes=2)).run(
            w.build_program()).cycles
        c8 = Delta(default_delta_config(lanes=8)).run(
            w.build_program()).cycles
        assert c8 <= c2

    def test_one_lane_delta_close_to_serial_busy(self):
        w = UniformTasks(num_tasks=8, trips=512)
        result = Delta(default_delta_config(lanes=1)).run(
            w.build_program())
        # One lane: makespan >= total busy (no parallelism to hide it).
        assert result.cycles >= sum(result.lane_busy)
