"""Golden-regression layer: the live suite must reproduce results/*.txt.

``results/f1.txt`` (headline speedups) and ``results/f5.txt`` (DRAM
traffic) are committed artifacts of the evaluation suite at 8 lanes.
Because the simulator is deterministic (see tests/test_determinism.py),
a code change that shifts any per-workload speedup or traffic ratio by
more than the tolerance below is a *behaviour* change and must regenerate
the goldens deliberately (``pytest benchmarks/bench_f1_speedup.py
benchmarks/bench_f5_traffic.py``) rather than slip through.
"""

import re
from pathlib import Path

import pytest

from repro.eval.runner import run_suite

#: Relative tolerance for golden comparisons. The goldens print speedups
#: and ratios to two decimals (quantization <= 0.5% for the smallest
#: ratios in the files), so 1% catches any real change while never
#: flagging formatting round-off.
TOLERANCE = 0.01

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _parse_rows(path: Path) -> list[list[str]]:
    """Rows of the whitespace-aligned table under the dashed rule."""
    lines = path.read_text().splitlines()
    rule = next(i for i, line in enumerate(lines)
                if re.fullmatch(r"[-\s]+", line) and "-" in line)
    rows = []
    for line in lines[rule + 1:]:
        if not line.strip():
            break
        rows.append(line.split())
    return rows


def _number(cell: str) -> float:
    """Parse a table cell like ``2,090``, ``2.59x`` or ``0.166``."""
    return float(cell.replace(",", "").rstrip("x"))


@pytest.fixture(scope="module")
def live_suite():
    """One live run of the full evaluation suite at the golden lane count."""
    return {c.workload: c for c in run_suite(lanes=8)}


def test_goldens_cover_the_whole_suite(live_suite):
    golden_names = {row[0] for row in _parse_rows(RESULTS / "f1.txt")}
    assert golden_names == set(live_suite)


def test_f1_speedups_match_golden(live_suite):
    for row in _parse_rows(RESULTS / "f1.txt"):
        name, delta_cyc, static_cyc, speedup = row[0], _number(row[1]), \
            _number(row[2]), _number(row[3])
        live = live_suite[name]
        assert live.speedup == pytest.approx(speedup, rel=TOLERANCE), \
            f"{name}: speedup drifted from golden f1.txt"
        assert live.delta.cycles == pytest.approx(delta_cyc, rel=TOLERANCE), \
            f"{name}: Delta cycles drifted from golden f1.txt"
        assert live.static.cycles == pytest.approx(static_cyc,
                                                   rel=TOLERANCE), \
            f"{name}: static cycles drifted from golden f1.txt"


def test_f5_traffic_ratios_match_golden(live_suite):
    for row in _parse_rows(RESULTS / "f5.txt"):
        name, delta_kib, static_kib, reduction = row[0], _number(row[1]), \
            _number(row[2]), _number(row[3])
        live = live_suite[name]
        assert live.traffic_ratio == pytest.approx(reduction,
                                                   rel=TOLERANCE), \
            f"{name}: traffic ratio drifted from golden f5.txt"
        assert live.delta.dram_bytes / 1024 == pytest.approx(
            delta_kib, rel=TOLERANCE, abs=0.05), \
            f"{name}: Delta DRAM KiB drifted from golden f5.txt"
        assert live.static.dram_bytes / 1024 == pytest.approx(
            static_kib, rel=TOLERANCE, abs=0.05), \
            f"{name}: static DRAM KiB drifted from golden f5.txt"
