"""Unit tests for the machine layer (repro.machine).

Machine.build composes the shared datapath; RunSession owns the run
lifecycle (progress accounting, stall detection, canonical result
assembly); MetricsBus layers typed namespaced groups over the plain
Counters store without changing any dotted counter name.
"""

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.machine import (
    ExecutionStalled,
    Machine,
    MetricsBus,
    RunResult,
    RunSession,
)
from repro.machine.metrics import CounterGroup, LaneMetrics
from repro.sim import Counters
from repro.sim.trace import NullTracer, Tracer


class TestMachineBuild:
    def test_composes_one_lane_per_config_lane(self):
        machine = Machine.build(default_delta_config(lanes=4))
        assert len(machine.lanes) == 4
        assert [lane.lane_id for lane in machine.lanes] == [0, 1, 2, 3]

    def test_components_share_env_and_metrics(self):
        machine = Machine.build(default_delta_config(lanes=2))
        assert machine.noc.env is machine.env
        assert machine.dram.env is machine.env
        assert all(lane.env is machine.env for lane in machine.lanes)
        assert isinstance(machine.metrics, MetricsBus)
        assert machine.noc.counters is machine.metrics
        assert machine.dram.counters is machine.metrics

    def test_multicast_follows_config_by_default(self):
        config = default_delta_config(lanes=2)
        machine = Machine.build(config)
        assert machine.noc.multicast_enabled == config.noc.multicast

    def test_multicast_override_for_static_datapath(self):
        config = default_delta_config(lanes=2)
        assert config.noc.multicast  # the override must actually override
        machine = Machine.build(config, multicast_enabled=False)
        assert machine.noc.multicast_enabled is False

    def test_default_tracer_is_disabled_null_tracer(self):
        machine = Machine.build(default_baseline_config(lanes=2))
        assert isinstance(machine.tracer, NullTracer)
        assert not machine.tracer.enabled

    def test_lane_busy_vector_in_lane_order(self):
        machine = Machine.build(default_delta_config(lanes=3))
        assert machine.lane_busy == [0.0, 0.0, 0.0]
        machine.lanes[1].tracker.busy(42.0)
        assert machine.lane_busy == [0.0, 42.0, 0.0]


class TestRunSession:
    def make_session(self, **build_kwargs):
        machine = Machine.build(default_delta_config(lanes=2),
                                **build_kwargs)
        return RunSession(machine, machine_name="delta",
                          program_name="prog", state={"k": "v"})

    def test_task_completed_accounts_progress(self):
        session = self.make_session()
        env = session.machine.env

        def ticker():
            yield env.timeout(7)
            session.task_completed()
            yield env.timeout(5)
            session.task_completed()

        env.process(ticker())
        env.run()
        assert session.tasks_executed == 2
        assert session.last_completion == 12.0

    def test_run_until_complete_ok_when_finished(self):
        session = self.make_session()
        env = session.machine.env

        def finish():
            yield env.timeout(1)

        env.process(finish())
        session.run_until_complete(max_cycles=None, finished=lambda: True)
        assert env.now == 1.0

    def test_stall_raises_with_diagnostics(self):
        session = self.make_session()
        env = session.machine.env

        def stuck():
            yield env.timeout(100)

        env.process(stuck())
        with pytest.raises(ExecutionStalled, match="did not finish"):
            session.run_until_complete(
                max_cycles=None, finished=lambda: False,
                stall_detail=lambda: "with 3 tasks outstanding")
        with pytest.raises(ExecutionStalled, match="tasks outstanding"):
            session.run_until_complete(
                max_cycles=None, finished=lambda: False,
                stall_detail=lambda: "with 3 tasks outstanding")

    def test_result_defaults_to_last_completion_cycles(self):
        session = self.make_session()
        env = session.machine.env

        def ticker():
            yield env.timeout(9)
            session.task_completed()
            yield env.timeout(100)  # drain past the last completion

        env.process(ticker())
        env.run()
        result = session.result()
        assert isinstance(result, RunResult)
        assert result.cycles == 9.0
        assert result.tasks_executed == 1
        assert result.machine == "delta"
        assert result.program_name == "prog"
        assert result.state == {"k": "v"}
        assert result.counters is session.machine.metrics
        assert result.trace is None  # NullTracer is not reported

    def test_result_explicit_cycles_for_barrier_models(self):
        session = self.make_session()
        result = session.result(cycles=123.0)
        assert result.cycles == 123.0

    def test_result_carries_enabled_tracer(self):
        session = self.make_session(tracer=Tracer(enabled=True))
        result = session.result(cycles=1.0)
        assert result.trace is session.machine.tracer


class TestMetricsBus:
    def test_group_writes_land_on_dotted_counters(self):
        bus = MetricsBus()
        bus.dram.add("read_bytes", 64)
        bus.pipe.add("bytes", 16)
        bus.dispatch.add("steals")
        assert bus.get("dram.read_bytes") == 64
        assert bus.get("pipe.bytes") == 16
        assert bus.get("dispatch.steals") == 1
        assert bus.dram.read_bytes == 64
        assert bus.pipe.bytes == 16
        assert bus.dispatch.steals == 1

    def test_undeclared_reads_default_to_zero(self):
        bus = MetricsBus()
        assert bus.noc.bytes == 0.0
        assert bus.mcast.get("nonexistent") == 0.0

    def test_dram_total_and_group_total(self):
        bus = MetricsBus()
        bus.dram.add("read_bytes", 100)
        bus.dram.add("write_bytes", 20)
        assert bus.dram.total_bytes == 120
        assert bus.dram.total() == 120
        assert bus.dram.as_dict() == {"read_bytes": 100.0,
                                      "write_bytes": 20.0}

    def test_set_max_through_group(self):
        bus = MetricsBus()
        bus.dispatch.set_max("cycles", 5)
        bus.dispatch.set_max("cycles", 3)
        assert bus.dispatch.cycles == 5

    def test_lane_groups(self):
        bus = MetricsBus()
        bus.add("lane3.trips", 11)
        lane = bus.lane(3)
        assert isinstance(lane, LaneMetrics)
        assert lane.trips == 11
        assert [g.lane_id for g in bus.lanes(2)] == [0, 1]

    def test_untyped_group_view(self):
        bus = MetricsBus()
        group = bus.group("custom")
        assert isinstance(group, CounterGroup)
        group.add("thing", 2)
        assert bus.get("custom.thing") == 2
        assert "thing" in group

    def test_declared_metric_names(self):
        assert "steals" in MetricsBus().dispatch.declared()
        assert "read_bytes" in MetricsBus().dram.declared()

    def test_adopt_shares_store_without_copying(self):
        plain = Counters()
        plain.add("noc.bytes", 7)
        bus = MetricsBus.adopt(plain)
        assert bus.noc.bytes == 7
        bus.noc.add("bytes", 3)
        assert plain.get("noc.bytes") == 10  # same underlying store

    def test_adopt_of_a_bus_is_identity(self):
        bus = MetricsBus()
        assert MetricsBus.adopt(bus) is bus

    def test_snapshot_matches_sorted_items(self):
        bus = MetricsBus()
        bus.noc.add("bytes", 1)
        bus.dram.add("read_bytes", 2)
        assert bus.snapshot() == (("dram.read_bytes", 2.0),
                                  ("noc.bytes", 1.0))


class TestRunResultMetrics:
    def make_result(self, counters):
        return RunResult(machine="delta", program_name="p",
                         config=default_delta_config(lanes=2),
                         cycles=10.0, tasks_executed=1,
                         counters=counters, lane_busy=[5.0, 5.0],
                         state=None)

    def test_metrics_view_over_plain_counters(self):
        plain = Counters()
        plain.add("dram.read_bytes", 30)
        plain.add("dram.write_bytes", 12)
        plain.add("noc.bytes", 8)
        result = self.make_result(plain)
        assert result.metrics.dram.total_bytes == 42
        assert result.dram_bytes == 42
        assert result.noc_bytes == 8
