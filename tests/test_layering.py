"""The import-layering check (tools/check_layering.py) as a test.

Running the checker inside the suite means a layering inversion fails
`pytest` locally with the same message CI prints, and the checker's own
mechanics (TYPE_CHECKING exemption, prefix matching) are covered too.
"""

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKER = REPO_ROOT / "tools" / "check_layering.py"
SRC_ROOT = REPO_ROOT / "src"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_layering", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepositoryLayering:
    def test_tree_has_no_violations(self):
        checker = load_checker()
        violations = checker.check_layering(SRC_ROOT)
        assert violations == []

    def test_cli_entry_point_passes(self):
        proc = subprocess.run([sys.executable, str(CHECKER)],
                              capture_output=True, text=True,
                              cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "passed" in proc.stdout

    def test_baseline_static_does_not_import_core_delta(self):
        # The inversion this PR removed must not come back.
        checker = load_checker()
        source = (SRC_ROOT / "repro" / "baseline" / "static.py").read_text()
        imports = checker.runtime_imports(ast.parse(source))
        assert not any(name.startswith("repro.core.delta")
                       for name in imports)

    def test_arch_does_not_import_core_at_runtime(self):
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "arch").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith("repro.core")
                         or name.startswith("repro.machine")]
            assert not offending, f"{path.name}: {offending}"

    def test_core_does_not_import_the_graph_layer(self):
        # core is the IR's substrate; consuming the IR would be circular.
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "core").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith("repro.graph")]
            assert not offending, f"{path.name}: {offending}"

    def test_graph_layer_stays_below_its_consumers(self):
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "graph").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith("repro.eval")
                         or name.startswith("repro.workloads")
                         or name.startswith("repro.baseline")]
            assert not offending, f"{path.name}: {offending}"

    def test_sched_seam_stays_below_its_consumers(self):
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "sched").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith(("repro.eval",
                                             "repro.workloads",
                                             "repro.baseline",
                                             "repro.cli"))]
            assert not offending, f"{path.name}: {offending}"

    def test_core_uses_only_the_sched_api(self):
        # The dispatcher resolves policies through the registry; the
        # implementations (and hint recovery) stay swappable behind it.
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "core").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith(("repro.sched.policies",
                                             "repro.sched.structure"))]
            assert not offending, f"{path.name}: {offending}"

    def test_sched_edges_are_enforced_by_the_checker(self):
        checker = load_checker()
        forbidden_pairs = {(src, dst) for src, dst, _ in
                           checker.FORBIDDEN_EDGES}
        assert ("repro.sched", "repro.eval") in forbidden_pairs
        assert ("repro.sched", "repro.workloads") in forbidden_pairs
        assert ("repro.machine", "repro.sched") in forbidden_pairs
        assert ("repro.core", "repro.sched.policies") in forbidden_pairs
        assert ("repro.core", "repro.sched.structure") in forbidden_pairs

    def test_store_imports_util_only(self):
        # The store is the cache substrate: one layer above util, below
        # everything that simulates. Any repro import other than util
        # (or the store package itself) is an inversion.
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "store").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith("repro.")
                         and not name.startswith(("repro.util",
                                                  "repro.store"))]
            assert not offending, f"{path.name}: {offending}"

    def test_simulation_stack_does_not_know_results_are_cached(self):
        # Caching above, simulating below: the machine being evaluated
        # must never observe (or perturb) the harness's cache.
        checker = load_checker()
        for layer in ("sim", "arch", "machine", "core", "baseline"):
            for path in (SRC_ROOT / "repro" / layer).glob("*.py"):
                imports = checker.runtime_imports(
                    ast.parse(path.read_text()))
                offending = [name for name in imports
                             if name.startswith("repro.store")]
                assert not offending, f"{layer}/{path.name}: {offending}"

    def test_store_edges_are_enforced_by_the_checker(self):
        checker = load_checker()
        forbidden_pairs = {(src, dst) for src, dst, _ in
                           checker.FORBIDDEN_EDGES}
        # The store reaches nothing above util...
        for target in ("sim", "arch", "machine", "core", "graph",
                       "eval", "cli"):
            assert ("repro.store", f"repro.{target}") in forbidden_pairs
        # ...and the simulation stack never reaches the store.
        for source in ("util", "sim", "arch", "machine", "core",
                       "baseline", "workloads"):
            assert (f"repro.{source}", "repro.store") in forbidden_pairs

    def test_serve_stays_above_the_simulation_stack(self):
        # The server drives the harness, the store and the metrics bus;
        # touching the simulation stack directly would let serving
        # perturb what is being measured.
        checker = load_checker()
        for path in (SRC_ROOT / "repro" / "serve").glob("*.py"):
            imports = checker.runtime_imports(ast.parse(path.read_text()))
            offending = [name for name in imports
                         if name.startswith(("repro.sim", "repro.core",
                                             "repro.baseline",
                                             "repro.graph", "repro.sched",
                                             "repro.isa", "repro.cli"))]
            assert not offending, f"{path.name}: {offending}"

    def test_simulation_stack_never_imports_serve(self):
        checker = load_checker()
        for layer in ("util", "store", "sim", "arch", "machine", "core",
                      "graph", "sched", "baseline", "workloads", "eval"):
            for path in (SRC_ROOT / "repro" / layer).glob("*.py"):
                imports = checker.runtime_imports(
                    ast.parse(path.read_text()))
                offending = [name for name in imports
                             if name.startswith("repro.serve")]
                assert not offending, f"{layer}/{path.name}: {offending}"

    def test_serve_edges_are_enforced_by_the_checker(self):
        checker = load_checker()
        forbidden_pairs = {(src, dst) for src, dst, _ in
                           checker.FORBIDDEN_EDGES}
        for target in ("sim", "core", "baseline", "graph", "sched", "cli"):
            assert ("repro.serve", f"repro.{target}") in forbidden_pairs
        for source in ("sim", "arch", "machine", "core", "baseline",
                       "eval", "store"):
            assert (f"repro.{source}", "repro.serve") in forbidden_pairs

    def test_graph_edges_are_enforced_by_the_checker(self):
        # The rules themselves, not just today's tree: a core module that
        # imports the IR must be reported.
        checker = load_checker()
        forbidden_pairs = {(src, dst) for src, dst, _ in
                           checker.FORBIDDEN_EDGES}
        assert ("repro.core", "repro.graph") in forbidden_pairs
        assert ("repro.graph", "repro.eval") in forbidden_pairs
        assert ("repro.graph", "repro.baseline") in forbidden_pairs


class TestCheckerMechanics:
    def test_type_checking_imports_are_exempt(self):
        checker = load_checker()
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core.delta import Delta\n"
            "import repro.sim\n"
        )
        imports = checker.runtime_imports(ast.parse(source))
        assert "repro.sim" in imports
        assert "repro.core.delta" not in imports

    def test_runtime_violation_is_reported(self, tmp_path):
        checker = load_checker()
        pkg = tmp_path / "repro" / "baseline"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "bad.py").write_text("from repro.core.delta import Delta\n")
        violations = checker.check_layering(tmp_path)
        assert len(violations) == 1
        assert "repro.baseline.bad imports repro.core.delta" in violations[0]

    def test_prefix_matching_is_on_module_boundaries(self):
        checker = load_checker()
        # "repro.corelib" must NOT match the "repro.core" prefix.
        assert not checker._matches("repro.corelib", "repro.core")
        assert checker._matches("repro.core.delta", "repro.core")
        assert checker._matches("repro.core", "repro.core")
