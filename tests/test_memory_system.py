"""Unit tests for scratchpad, DRAM, and NoC models."""

import pytest

from repro.arch.dram import Dram
from repro.arch.noc import DISP_NODE, MEM_NODE, Noc
from repro.arch.spad import CapacityError, Scratchpad
from repro.sim import Counters, Environment
from repro.sim.engine import SimulationError


def make_env():
    env = Environment()
    return env, Counters()


# -------------------------------------------------------------- Scratchpad

def test_spad_access_counts_bytes():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 1024, banks=2,
                      bank_bytes_per_cycle=4)

    def proc():
        yield spad.access(64, is_write=True)
        yield spad.access(32, is_write=False)

    env.process(proc())
    env.run()
    assert counters.get("spad.write_bytes") == 64
    assert counters.get("spad.read_bytes") == 32


def test_spad_striping_uses_banks_round_robin():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 1024, banks=2,
                      bank_bytes_per_cycle=1)
    finish = []

    def proc():
        a = spad.access(10, is_write=True)   # bank 0
        b = spad.access(10, is_write=True)   # bank 1
        yield env.all_of([a, b])
        finish.append(env.now)

    env.process(proc())
    env.run()
    # Parallel banks: both 10-cycle transfers overlap.
    assert finish == [10]


def test_spad_same_bank_serializes():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 1024, banks=1,
                      bank_bytes_per_cycle=1)
    finish = []

    def proc():
        a = spad.access(10, is_write=True)
        b = spad.access(10, is_write=True)
        yield env.all_of([a, b])
        finish.append(env.now)

    env.process(proc())
    env.run()
    assert finish == [20]


def test_spad_residency_lifecycle():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 100, banks=1,
                      bank_bytes_per_cycle=1)
    spad.allocate("regionA", 60)
    assert spad.is_resident("regionA")
    assert spad.used_bytes == 60
    spad.allocate("regionA", 60)  # idempotent
    assert spad.used_bytes == 60
    with pytest.raises(CapacityError):
        spad.allocate("regionB", 60)
    spad.release("regionA")
    assert spad.free_bytes == 100
    spad.release("missing")  # no-op


def test_spad_eviction_lru():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 100, banks=1,
                      bank_bytes_per_cycle=1)
    spad.allocate("old", 40)
    spad.allocate("new", 40)
    evicted = spad.evict_lru_until(60)
    assert evicted == ["old"]
    assert spad.resident_regions() == ["new"]
    assert counters.get("spad.evictions") == 1


def test_spad_eviction_impossible_request():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 100, banks=1,
                      bank_bytes_per_cycle=1)
    with pytest.raises(CapacityError):
        spad.evict_lru_until(200)


def test_spad_peak_usage_counter():
    env, counters = make_env()
    spad = Scratchpad(env, counters, "spad", 100, banks=1,
                      bank_bytes_per_cycle=1)
    spad.allocate("a", 30)
    spad.allocate("b", 50)
    spad.release("a")
    assert counters.get("spad.peak_used_bytes") == 80


# -------------------------------------------------------------------- DRAM

def test_dram_sequential_fetch_time():
    env, counters = make_env()
    dram = Dram(env, counters, bytes_per_cycle=8, latency=10,
                random_penalty=2.0)
    done = []

    def proc():
        yield dram.fetch(80, locality=1.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [80 / 8 + 10]


def test_dram_random_fetch_pays_penalty():
    env, counters = make_env()
    dram = Dram(env, counters, bytes_per_cycle=8, latency=0,
                random_penalty=2.0)
    done = []

    def proc():
        yield dram.fetch(80, locality=0.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2.0 * 80 / 8]
    assert counters.get("dram.read_bytes") == 80
    assert counters.get("dram.read_effective_bytes") == 160


def test_dram_contention_serializes():
    env, counters = make_env()
    dram = Dram(env, counters, bytes_per_cycle=1, latency=0,
                random_penalty=1.0)
    times = {}

    def proc(tag):
        yield dram.fetch(50)
        times[tag] = env.now

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert times == {"a": 50, "b": 100}


def test_dram_writeback_counted_separately():
    env, counters = make_env()
    dram = Dram(env, counters, bytes_per_cycle=4, latency=0,
                random_penalty=1.0)

    def proc():
        yield dram.fetch(40)
        yield dram.writeback(24)

    env.process(proc())
    env.run()
    assert counters.get("dram.read_bytes") == 40
    assert counters.get("dram.write_bytes") == 24
    assert dram.total_bytes == 64


def test_dram_validates_inputs():
    env, counters = make_env()
    with pytest.raises(SimulationError):
        Dram(env, counters, 8, 0, random_penalty=0.5)
    dram = Dram(env, counters, 8, 0, random_penalty=1.5)
    with pytest.raises(SimulationError):
        dram.fetch(10, locality=1.5)
    with pytest.raises(SimulationError):
        dram.fetch(-1)


# --------------------------------------------------------------------- NoC

def make_noc(lanes=4, multicast=True, bpc=8.0, hop=1):
    env, counters = make_env()
    noc = Noc(env, counters, lanes, link_bytes_per_cycle=bpc,
              hop_latency=hop, header_bytes=0, multicast_enabled=multicast)
    return env, counters, noc


def test_noc_places_all_nodes():
    _env, _counters, noc = make_noc(lanes=6)
    names = set(noc.coords)
    assert MEM_NODE in names and DISP_NODE in names
    assert {f"lane{i}" for i in range(6)} <= names
    assert noc.lane_names() == [f"lane{i}" for i in range(6)]


def test_noc_route_is_contiguous_xy():
    _env, _counters, noc = make_noc()
    path = noc.route(MEM_NODE, "lane3")
    assert path[0] == noc.node_coord(MEM_NODE)
    assert path[-1] == noc.node_coord("lane3")
    for a, b in zip(path, path[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
    # XY routing: column fixed only after all X movement.
    assert noc.hops(MEM_NODE, "lane3") == len(path) - 1


def test_noc_unknown_node():
    _env, _counters, noc = make_noc()
    with pytest.raises(SimulationError):
        noc.node_coord("lane99")


def test_noc_unicast_latency_and_bytes():
    env, counters, noc = make_noc(bpc=8, hop=2)
    done = []

    def proc():
        yield noc.unicast(MEM_NODE, "lane0", 64)
        done.append(env.now)

    env.process(proc())
    env.run()
    hops = noc.hops(MEM_NODE, "lane0")
    # Wormhole approx: serialization once (links in parallel) + hop latency.
    assert done == [64 / 8 + 2 * hops]
    assert counters.get("noc.bytes") == 64 * hops


def test_noc_self_send_is_free():
    env, counters, noc = make_noc()
    done = []

    def proc():
        yield noc.unicast("lane0", "lane0", 64)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]
    assert counters.get("noc.bytes") == 0


def test_noc_multicast_cheaper_than_unicasts():
    env_m, counters_m, noc_m = make_noc(multicast=True)
    env_u, counters_u, noc_u = make_noc(multicast=False)
    dsts = [f"lane{i}" for i in range(4)]

    def mproc():
        yield noc_m.multicast(MEM_NODE, dsts, 128)

    def uproc():
        yield noc_u.multicast(MEM_NODE, dsts, 128)

    env_m.process(mproc())
    env_m.run()
    env_u.process(uproc())
    env_u.run()
    assert counters_m.get("noc.bytes") < counters_u.get("noc.bytes")
    assert counters_m.get("noc.multicasts") == 1
    assert counters_u.get("noc.multicasts") == 0


def test_noc_multicast_single_dst_is_unicast():
    env, counters, noc = make_noc(multicast=True)

    def proc():
        yield noc.multicast(MEM_NODE, ["lane1"], 64)

    env.process(proc())
    env.run()
    assert counters.get("noc.multicasts") == 0
    assert counters.get("noc.messages") == 1


def test_noc_multicast_dedupes_destinations():
    env, counters, noc = make_noc(multicast=True)

    def proc():
        yield noc.multicast(MEM_NODE, ["lane1", "lane1", "lane2"], 64)

    env.process(proc())
    env.run()
    assert counters.get("noc.multicasts") == 1


def test_noc_multicast_no_destinations_rejected():
    _env, _counters, noc = make_noc()
    with pytest.raises(SimulationError):
        noc.multicast(MEM_NODE, [], 64)


def test_noc_peak_link_utilization_bounded():
    env, _counters, noc = make_noc()

    def proc():
        yield noc.unicast(MEM_NODE, "lane2", 512)

    env.process(proc())
    env.run()
    assert 0.0 < noc.peak_link_utilization() <= 1.0
