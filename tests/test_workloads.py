"""Workload-suite tests: functional correctness on both machines.

These are the project's integration tests: every evaluation workload (at
reduced sizes where supported) runs on Delta and on the static baseline,
and the simulated state must match the workload's reference
implementation exactly.
"""

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.program import expand_program
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import WorkloadError
from repro.workloads.bfs import BfsWorkload
from repro.workloads.cholesky import CholeskyWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.knn import KnnWorkload
from repro.workloads.mergesort import MergesortWorkload
from repro.workloads.registry import workload_names
from repro.workloads.spmm import SpmmWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.stencil_amr import StencilAmrWorkload
from repro.workloads.triangle import TriangleWorkload
from repro.workloads.wavefront import WavefrontWorkload

# Reduced-size instances keep the full matrix of (workload x machine)
# fast while exercising identical code paths.
SMALL_WORKLOADS = [
    SpmvWorkload(num_rows=64, num_cols=64, max_nnz=24),
    SpmmWorkload(num_rows=32, num_cols=32, width=8),
    BfsWorkload(num_vertices=128),
    MergesortWorkload(n=1024, leaf=128),
    CholeskyWorkload(tiles=4, tile_size=8),
    WavefrontWorkload(tiles=4, tile_size=16),
    TriangleWorkload(num_vertices=96),
    HistogramWorkload(n=2048, bins=32, chunks=8),
    KnnWorkload(num_points=512, num_queries=8, chunks=8),
    StencilAmrWorkload(num_tiles=12, max_side=32),
]


@pytest.mark.parametrize("workload", SMALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_delta_functional_correctness(workload):
    result = Delta(default_delta_config(lanes=4)).run(
        workload.build_program())
    workload.check(result.state)


@pytest.mark.parametrize("workload", SMALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_static_functional_correctness(workload):
    result = StaticParallel(default_baseline_config(lanes=4)).run(
        workload.build_program())
    workload.check(result.state)


@pytest.mark.parametrize("workload", SMALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_build_program_is_fresh_each_call(workload):
    """Two builds must not share mutable state."""
    p1 = workload.build_program()
    p2 = workload.build_program()
    assert p1.state is not p2.state
    assert p1.initial_tasks[0] is not p2.initial_tasks[0]


@pytest.mark.parametrize("workload", SMALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_expansion_matches_delta_task_count(workload):
    expanded = expand_program(workload.build_program())
    result = Delta(default_delta_config(lanes=4)).run(
        workload.build_program())
    assert result.tasks_executed == expanded.task_count


@pytest.mark.parametrize("workload", SMALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_describe_has_required_fields(workload):
    d = workload.describe()
    assert d["name"] == workload.name
    assert "mechanisms" in d


def test_registry_contains_full_suite():
    names = workload_names()
    for expected in ("spmv", "spmm", "bfs", "mergesort", "cholesky",
                     "wavefront", "triangle", "histogram", "knn",
                     "stencil-amr"):
        assert expected in names
    assert len(all_workloads()) == 10


def test_registry_micro_workloads_excluded_from_suite():
    suite_names = {w.name for w in all_workloads()}
    assert not any(n.startswith("micro") for n in suite_names)


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("nope")


def test_check_raises_on_wrong_state():
    w = SpmvWorkload(num_rows=32, num_cols=32)
    program = w.build_program()
    program.state["y"][:] = -999
    with pytest.raises(WorkloadError):
        w.check(program.state)


def test_verify_result_boolean():
    w = HistogramWorkload(n=512, bins=16, chunks=4)
    assert w.verify_result({"result": None, "partials": {}}) is False


class TestWorkloadDeterminism:
    def test_same_seed_same_inputs(self):
        a = SpmvWorkload(num_rows=32, num_cols=32, seed=5)
        b = SpmvWorkload(num_rows=32, num_cols=32, seed=5)
        assert (a.matrix.col_idx == b.matrix.col_idx).all()
        assert (a.x == b.x).all()

    def test_different_seed_different_inputs(self):
        a = SpmvWorkload(num_rows=64, num_cols=64, seed=1)
        b = SpmvWorkload(num_rows=64, num_cols=64, seed=2)
        assert not (a.matrix.row_ptr == b.matrix.row_ptr).all() or \
            not (a.x == b.x).all()

    def test_simulation_cycles_deterministic(self):
        w = TriangleWorkload(num_vertices=96)
        r1 = Delta(default_delta_config(lanes=4)).run(w.build_program())
        r2 = Delta(default_delta_config(lanes=4)).run(w.build_program())
        assert r1.cycles == r2.cycles


class TestWorkloadStructure:
    def test_spmv_row_skew_exists(self):
        w = SpmvWorkload()
        nnz = [w.matrix.row_nnz(r) for r in range(w.num_rows)]
        assert max(nnz) > 4 * (sum(nnz) / len(nnz))

    def test_bfs_reaches_every_vertex(self):
        w = BfsWorkload(num_vertices=128)
        assert len(w.reference()) == 128  # chain guarantees connectivity

    def test_mergesort_requires_divisible_leaf(self):
        with pytest.raises(ValueError):
            MergesortWorkload(n=1000, leaf=256)

    def test_histogram_requires_power_of_two_chunks(self):
        with pytest.raises(ValueError):
            HistogramWorkload(chunks=12)

    def test_cholesky_reference_is_factor(self):
        import numpy as np

        w = CholeskyWorkload(tiles=3, tile_size=4)
        factor = w.reference()
        assert np.allclose(factor @ factor.T, w.matrix)

    def test_wavefront_chain_depth(self):
        w = WavefrontWorkload(tiles=3, tile_size=8)
        expanded = expand_program(w.build_program())
        # Root + diagonal wavefront: max depth = 2*(tiles-1) + 1.
        assert len(expanded.phases) == 2 * (3 - 1) + 2

    def test_triangle_count_positive(self):
        assert TriangleWorkload(num_vertices=96).reference() > 0

    def test_knn_reference_sorted_by_distance(self):
        w = KnnWorkload(num_points=128, num_queries=4, chunks=4)
        ref = w.reference()
        assert len(ref) == 4
        assert all(len(r) == w.k for r in ref)

    def test_stencil_sides_skewed(self):
        w = StencilAmrWorkload(num_tiles=30)
        areas = sorted(s * s for s in w.sides)
        assert areas[-1] > 8 * areas[0]
