"""Unit and property tests for the command ISA (repro.isa)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    FIELD_LAYOUTS,
    Instruction,
    IsaError,
    Opcode,
    assemble,
    decode,
    decode_program,
    disassemble,
    encode,
    encode_program,
    lower_task,
)
from repro.isa.instructions import make
from repro.isa.lower import lower_spawn
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.mergesort import MergesortWorkload
from repro.core.program import expand_program


def random_instruction_strategy():
    """Hypothesis strategy: any valid instruction with in-range fields."""

    def build(opcode_index: int, raw: list[int]) -> Instruction:
        opcode = list(Opcode)[opcode_index % len(Opcode)]
        layout = FIELD_LAYOUTS[opcode]
        operands = {}
        for i, (name, width) in enumerate(layout):
            operands[name] = raw[i % len(raw)] % (1 << width)
        return Instruction(opcode, operands)

    return st.builds(build, st.integers(min_value=0, max_value=100),
                     st.lists(st.integers(min_value=0, max_value=2**20),
                              min_size=1, max_size=6))


class TestInstruction:
    def test_valid_construction(self):
        ins = make(Opcode.SIN, port=3, addr=100, length=8, locality=2)
        assert ins.get("port") == 3

    def test_missing_operand_rejected(self):
        with pytest.raises(IsaError, match="expects operands"):
            make(Opcode.SIN, port=3)

    def test_extra_operand_rejected(self):
        with pytest.raises(IsaError):
            make(Opcode.BAR, bogus=1)

    def test_field_overflow_rejected(self):
        with pytest.raises(IsaError, match="does not fit"):
            make(Opcode.CFG, dfg=1 << 10)

    def test_render(self):
        assert make(Opcode.BAR).render() == "bar"
        assert "dfg=5" in make(Opcode.CFG, dfg=5).render()

    def test_layouts_fit_in_word(self):
        for opcode, layout in FIELD_LAYOUTS.items():
            assert 6 + sum(w for _n, w in layout) <= 32, opcode


class TestEncoding:
    def test_known_encoding(self):
        # BAR: opcode 0x07 in top 6 bits of a 32-bit word.
        assert encode(make(Opcode.BAR)) == 0x07 << 26

    def test_round_trip_examples(self):
        examples = [
            make(Opcode.CFG, dfg=17),
            make(Opcode.SIN, port=2, addr=512, length=16, locality=3),
            make(Opcode.TSPAWN, ttype=9, argb=123),
            make(Opcode.TWORK, estimate=60000),
            make(Opcode.TRET),
        ]
        for ins in examples:
            assert decode(encode(ins)) == ins

    @given(random_instruction_strategy())
    def test_round_trip_property(self, ins):
        assert decode(encode(ins)) == ins

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError, match="unknown opcode"):
            decode(0x3F << 26)

    def test_nonzero_padding_rejected(self):
        word = encode(make(Opcode.BAR)) | 0x1
        with pytest.raises(IsaError, match="padding"):
            decode(word)

    def test_word_out_of_range(self):
        with pytest.raises(IsaError):
            decode(1 << 32)

    def test_program_round_trip(self):
        program = [make(Opcode.CFG, dfg=1), make(Opcode.BAR),
                   make(Opcode.TRET)]
        blob = encode_program(program)
        assert len(blob) == 12
        assert decode_program(blob) == program

    def test_misaligned_program_rejected(self):
        with pytest.raises(IsaError, match="word-aligned"):
            decode_program(b"\x00\x00\x00")


class TestAssembler:
    def test_assemble_basic(self):
        program = assemble("""
            cfg dfg=3
            sin port=0, addr=0x40, length=4, locality=3
            bar   # wait for the stream
            tret
        """)
        assert [i.opcode for i in program] == [
            Opcode.CFG, Opcode.SIN, Opcode.BAR, Opcode.TRET]
        assert program[1].get("addr") == 0x40

    def test_assemble_disassemble_round_trip(self):
        program = [
            make(Opcode.TSPAWN, ttype=1, argb=2),
            make(Opcode.TWORK, estimate=99),
            make(Opcode.TSTREAM, producer=7),
            make(Opcode.TCOMMIT),
        ]
        assert assemble(disassemble(program)) == program

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError, match="unknown mnemonic"):
            assemble("frobnicate a=1")

    def test_bad_operand_syntax(self):
        with pytest.raises(IsaError, match="name=value"):
            assemble("cfg 3")

    def test_bad_integer(self):
        with pytest.raises(IsaError, match="bad integer"):
            assemble("cfg dfg=zzz")

    def test_operand_mismatch_reports_line(self):
        with pytest.raises(IsaError, match="line 2"):
            assemble("bar\ncfg dfg=1, extra=2")

    def test_comments_and_blanks_ignored(self):
        assert assemble("\n# only a comment\n\n") == []


class TestLowering:
    def test_lower_spmv_task(self):
        program = SpmvWorkload(num_rows=32, num_cols=64).build_program()
        task = program.initial_tasks[0]
        commands = lower_task(task)
        opcodes = [c.opcode for c in commands]
        assert opcodes[0] == Opcode.CFG
        assert Opcode.TSHARE in opcodes      # shared x declared
        assert Opcode.SRD in opcodes         # read resident copy
        assert Opcode.SIN in opcodes         # private CSR slice
        assert opcodes[-1] == Opcode.TRET
        assert opcodes[-2] == Opcode.BAR

    def test_lower_pipelined_task_emits_forward(self):
        program = MergesortWorkload(n=512, leaf=128).build_program()
        expanded = expand_program(program)
        producer = next(t for t in expanded.tasks if t.stream_consumers)
        commands = lower_task(producer)
        assert Opcode.SFWD in [c.opcode for c in commands]

    def test_lower_consumer_declares_stream_deps(self):
        program = MergesortWorkload(n=512, leaf=128).build_program()
        expanded = expand_program(program)
        consumer = next(t for t in expanded.tasks if t.stream_from)
        commands = lower_task(consumer)
        assert Opcode.TSTREAM in [c.opcode for c in commands]

    def test_lowered_commands_encode(self):
        program = SpmvWorkload(num_rows=32, num_cols=64).build_program()
        for task in program.initial_tasks[:4]:
            commands = lower_task(task)
            assert decode_program(encode_program(commands)) == commands

    def test_spawn_block_shape(self):
        program = SpmvWorkload(num_rows=32, num_cols=64).build_program()
        block = lower_spawn(program.initial_tasks[0])
        opcodes = [c.opcode for c in block]
        assert opcodes[0] == Opcode.TSPAWN
        assert Opcode.TWORK in opcodes
        assert opcodes[-1] == Opcode.TCOMMIT
