"""Unit tests for stream engines and the lane (config cache, compute)."""

from repro.arch.config import FabricConfig, LaneConfig
from repro.arch.dfg import axpy_dfg, dot_product_dfg, merge_dfg
from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.mapper import Mapper
from repro.arch.noc import Noc
from repro.sim import Counters, Environment, Store


def make_system(lanes=2, chunk_bytes=64, config_cycles=16,
                config_cache_entries=2):
    env = Environment()
    counters = Counters()
    noc = Noc(env, counters, lanes, link_bytes_per_cycle=16, hop_latency=1,
              header_bytes=0, multicast_enabled=True)
    dram = Dram(env, counters, bytes_per_cycle=16, latency=20,
                random_penalty=2.0)
    lane_cfg = LaneConfig(
        fabric=FabricConfig(), spad_bytes=16 * 1024, spad_banks=4,
        spad_bank_bytes_per_cycle=8, config_cycles=config_cycles,
        config_cache_entries=config_cache_entries,
        stream_chunk_bytes=chunk_bytes)
    mapper = Mapper(lane_cfg.fabric)
    lane_objs = [Lane(env, counters, i, lane_cfg, noc, dram, mapper)
                 for i in range(lanes)]
    return env, counters, noc, dram, lane_objs


# ----------------------------------------------------------- StreamEngine

def test_chunks_of_splits_exactly():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    se = lanes[0].streams
    assert se.chunks_of(0) == []
    assert se.chunks_of(64) == [64]
    assert se.chunks_of(100) == [64, 36]
    assert se.chunk_count(100) == 2
    assert se.chunk_count(0) == 0


def test_stream_in_moves_bytes_through_all_stages():
    env, counters, noc, dram, lanes = make_system()
    lane = lanes[0]

    def proc():
        yield lane.streams.stream_in(256, locality=1.0)

    env.process(proc())
    env.run()
    assert counters.get("dram.read_bytes") == 256
    assert counters.get("lane0.spad.write_bytes") == 256
    assert counters.get("lane0.stream_in_bytes") == 256
    assert counters.get("noc.bytes") > 0


def test_stream_in_feeds_dest_store_and_closes():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    store = Store(env, capacity=8)
    tokens = []

    def consumer():
        while True:
            item = yield store.get()
            if item is Store.END:
                break
            tokens.append(item)

    def proc():
        yield lane.streams.stream_in(200, dest_store=store, close_dest=True)

    env.process(consumer())
    env.process(proc())
    env.run()
    assert tokens == [64, 64, 64, 8]


def test_stream_in_pipelines_chunks():
    """Total time for N chunks must be far below N * single-chunk time."""
    env1, _c1, _n1, _d1, lanes1 = make_system(chunk_bytes=64)

    def one(lane):
        yield lane.streams.stream_in(64)

    env1.process(one(lanes1[0]))
    env1.run()
    single = env1.now

    env8, _c8, _n8, _d8, lanes8 = make_system(chunk_bytes=64)

    def many(lane):
        yield lane.streams.stream_in(64 * 8)

    env8.process(many(lanes8[0]))
    env8.run()
    assert env8.now < 8 * single * 0.7  # overlap across stages


def test_read_resident_touches_only_spad():
    env, counters, noc, dram, lanes = make_system()
    lane = lanes[0]

    def proc():
        yield lane.streams.read_resident(256)

    env.process(proc())
    env.run()
    assert counters.get("dram.read_bytes") == 0
    assert counters.get("noc.bytes") == 0
    assert counters.get("lane0.spad.read_bytes") == 256
    assert counters.get("lane0.resident_read_bytes") == 256


def test_stream_out_writes_back():
    env, counters, noc, dram, lanes = make_system()
    lane = lanes[0]

    def proc():
        yield lane.streams.stream_out(128)

    env.process(proc())
    env.run()
    assert counters.get("dram.write_bytes") == 128
    assert counters.get("lane0.spad.read_bytes") == 128


def test_stream_out_drains_src_store():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    store = Store(env, capacity=4)

    def producer():
        yield store.put(64)
        yield store.put(64)
        store.close()

    def proc():
        yield lane.streams.stream_out(128, src_store=store)

    env.process(producer())
    env.process(proc())
    env.run()
    assert counters.get("dram.write_bytes") == 128


def test_forward_between_lanes_bypasses_dram():
    env, counters, noc, dram, lanes = make_system(lanes=2, chunk_bytes=64)
    src_store = Store(env, capacity=4)
    dst_store = Store(env, capacity=4)
    received = []

    def producer():
        for _ in range(3):
            yield src_store.put(64)
        src_store.close()

    def consumer():
        while True:
            item = yield dst_store.get()
            if item is Store.END:
                break
            received.append(item)

    def fwd():
        yield lanes[0].streams.forward("lane1", 192, src_store, dst_store)

    env.process(producer())
    env.process(consumer())
    env.process(fwd())
    env.run()
    assert received == [64, 64, 64]
    assert counters.get("dram.read_bytes") == 0
    assert counters.get("dram.write_bytes") == 0
    assert counters.get("noc.forwarded_stream_bytes") == 192


# ------------------------------------------------------------------- Lane

def run_gen(env, gen):
    """Helper: run a lane generator method to completion, return value."""
    result = {}

    def wrapper():
        value = yield from gen
        result["value"] = value

    env.process(wrapper())
    env.run()
    return result.get("value")


def test_lane_configure_miss_costs_cycles():
    env, counters, noc, dram, lanes = make_system(config_cycles=16)
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    assert mapping.ii >= 1
    assert env.now == 16
    assert counters.get("lane0.config_misses") == 1


def test_lane_configure_hit_is_free():
    env, counters, noc, dram, lanes = make_system(config_cycles=16)
    lane = lanes[0]
    run_gen(env, lane.configure(dot_product_dfg()))
    t0 = env.now
    run_gen(env, lane.configure(dot_product_dfg()))
    assert env.now == t0
    assert counters.get("lane0.config_hits") == 1
    assert lane.configured_for(dot_product_dfg())


def test_lane_config_cache_evicts_lru():
    env, counters, noc, dram, lanes = make_system(config_cache_entries=2)
    lane = lanes[0]
    run_gen(env, lane.configure(dot_product_dfg()))
    run_gen(env, lane.configure(axpy_dfg()))
    run_gen(env, lane.configure(merge_dfg()))  # evicts dot
    assert not lane.configured_for(dot_product_dfg())
    assert lane.configured_for(merge_dfg())


def test_lane_run_pipeline_timing():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    start = env.now
    run_gen(env, lane.run_pipeline(mapping, trips=64))
    elapsed = env.now - start
    # 64 trips at II + depth fill.
    assert elapsed == mapping.depth + mapping.ii * 64
    assert counters.get("lane0.trips") == 64
    assert lane.busy_cycles > 0


def test_lane_run_pipeline_zero_trips_closes_outputs():
    env, counters, noc, dram, lanes = make_system()
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    out = Store(env, capacity=2)
    run_gen(env, lane.run_pipeline(mapping, trips=0, out_stores=[out]))
    assert out.closed


def test_lane_run_pipeline_waits_for_input_tokens():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    feed = Store(env, capacity=4)
    finished = []

    def slow_feeder():
        # One chunk (16 elems at 4B) per 100 cycles: compute is starved.
        for _ in range(4):
            yield env.timeout(100)
            yield feed.put(16)
        feed.close()

    def compute():
        yield from lane.run_pipeline(mapping, trips=64,
                                     in_streams=[(feed, 4)])
        finished.append(env.now)

    env.process(slow_feeder())
    env.process(compute())
    env.run()
    assert finished[0] >= 400  # gated by the feeder, not the fabric


def test_lane_run_pipeline_emits_output_tokens():
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    out = Store(env, capacity=16)
    got = []

    def consumer():
        while True:
            item = yield out.get()
            if item is Store.END:
                break
            got.append(item)

    env.process(consumer())
    run_gen(env, lane.run_pipeline(mapping, trips=40, out_stores=[out]))
    # chunk_elems = 64/4 = 16 -> tokens 16, 16, 8.
    assert got == [16, 16, 8]


def test_forward_same_lane_skips_noc():
    env, counters, noc, dram, lanes = make_system(lanes=2, chunk_bytes=64)
    src_store = Store(env, capacity=4)
    dst_store = Store(env, capacity=4)

    def producer():
        yield src_store.put(64)
        src_store.close()

    def consumer():
        while True:
            item = yield dst_store.get()
            if item is Store.END:
                break

    def fwd():
        yield lanes[0].streams.forward("lane0", 64, src_store, dst_store)

    env.process(producer())
    env.process(consumer())
    env.process(fwd())
    env.run()
    assert counters.get("noc.bytes") == 0  # co-located: no network hop
    assert counters.get("lane0.forward_bytes") == 64


def test_stream_in_zero_bytes_completes_immediately():
    env, counters, noc, dram, lanes = make_system()
    store = Store(env, capacity=2)

    def proc():
        yield lanes[0].streams.stream_in(0, dest_store=store,
                                         close_dest=True)

    env.process(proc())
    env.run()
    assert store.closed
    assert counters.get("dram.read_bytes") == 0


def test_run_pipeline_input_larger_than_trips_paced():
    """A stream with more chunks than compute steps drains proportionally."""
    env, counters, noc, dram, lanes = make_system(chunk_bytes=64)
    lane = lanes[0]
    mapping = run_gen(env, lane.configure(dot_product_dfg()))
    feed = Store(env, capacity=64)
    # 8 chunks of input for only 2 compute steps (32 trips, 16/step).
    def feeder():
        for _ in range(8):
            yield feed.put(64)
        feed.close()

    env.process(feeder())
    run_gen(env, lane.run_pipeline(mapping, trips=32,
                                   in_streams=[(feed, 8)]))
    # Proportional pacing: all 8 chunks consumed across the 2 steps.
    assert feed.level == 0
