"""Fast-vs-reference engine equivalence: the bit-identity contract.

``REPRO_ENGINE=fast`` (the default) swaps the heap-based event kernel for
the calendar-queue kernel in :mod:`repro.sim.fastengine`, plus the
closed-form component fast paths it enables (NoC delivery, CPS stream
pumps). The contract is that the switch is *invisible*: every statistic
the harness reads — fingerprints, :class:`RunResult` fields, the full
MetricsBus counter bag — is bit-identical between the two engines.

This module is the enforcement: the full workload registry at two lane
counts on both runtimes, Hypothesis-random programs under seeded-random
machine configurations, and the raw kernel primitives. The reference
kernel is the oracle; any divergence here is a fast-path bug by
definition.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.eval.runner import compare
from repro.machine.metrics import MetricsBus
from repro.sim import (
    BandwidthServer,
    Environment,
    FastEnvironment,
    Store,
    engine_name,
    make_environment,
)
from repro.sim.fastengine import ENGINE_VAR
from repro.util.fingerprint import (
    comparison_fingerprint,
    result_fingerprint,
    result_stats,
)
from repro.workloads.registry import get_workload, workload_names
from tests.test_properties import (
    FEATURE_COMBOS,
    build_program_from_spec,
    random_program_spec,
)

LANE_COUNTS = [2, 8]

ENGINES = ("reference", "fast")


@contextmanager
def engine(name: str):
    """Select the event kernel for the machines built inside the block."""
    old = os.environ.get(ENGINE_VAR)
    os.environ[ENGINE_VAR] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ[ENGINE_VAR]
        else:
            os.environ[ENGINE_VAR] = old


def _compare_under(engine_choice: str, workload_name: str, lanes: int):
    """One Delta-vs-static comparison under the chosen kernel.

    A fresh workload/program pair is built inside the block: programs are
    stateful across runs, so reusing one across engines would diverge for
    reasons that have nothing to do with the kernel.
    """
    with engine(engine_choice):
        return compare(get_workload(workload_name),
                       default_delta_config(lanes=lanes), verify=False)


def _assert_results_identical(reference, fast, label: str) -> None:
    """Field-by-field bit-identity of two RunResults (reference first)."""
    assert result_fingerprint(fast) == result_fingerprint(reference), (
        f"{label}: fingerprint diverged\n"
        f"  reference: {result_stats(reference)}\n"
        f"  fast:      {result_stats(fast)}")
    # The fingerprint already covers these, but asserting them separately
    # gives a readable diff when a future change breaks one field.
    assert fast.machine == reference.machine
    assert fast.program_name == reference.program_name
    assert fast.cycles == reference.cycles
    assert fast.tasks_executed == reference.tasks_executed
    assert fast.lane_busy == reference.lane_busy
    assert fast.counters.snapshot() == reference.counters.snapshot()
    # MetricsBus derives from the counter bag; check the headline views.
    ref_metrics, fast_metrics = reference.metrics, fast.metrics
    assert isinstance(fast_metrics, MetricsBus)
    assert fast_metrics.dram.total_bytes == ref_metrics.dram.total_bytes
    assert fast_metrics.noc.bytes == ref_metrics.noc.bytes
    assert fast.imbalance_cv == reference.imbalance_cv


# ------------------------------------------------- full workload matrix

@pytest.mark.parametrize("lanes", LANE_COUNTS)
@pytest.mark.parametrize("workload_name", workload_names())
def test_engines_bit_identical_on_workload(workload_name, lanes):
    """Every registered workload, both runtimes, both lane counts."""
    reference = _compare_under("reference", workload_name, lanes)
    fast = _compare_under("fast", workload_name, lanes)
    _assert_results_identical(reference.delta, fast.delta,
                              f"{workload_name}@lanes={lanes} [delta]")
    _assert_results_identical(reference.static, fast.static,
                              f"{workload_name}@lanes={lanes} [static]")
    assert comparison_fingerprint(fast) == comparison_fingerprint(reference)


# ------------------------------------------------- randomized configs

@st.composite
def random_machine_config(draw):
    """A seeded-random MachineConfig exercising scheduler/NoC variety."""
    from dataclasses import replace

    lanes = draw(st.sampled_from([1, 2, 4]))
    config = default_delta_config(
        lanes=lanes,
        seed=draw(st.integers(min_value=0, max_value=7)),
        features=FEATURE_COMBOS[draw(st.integers(
            min_value=0, max_value=len(FEATURE_COMBOS) - 1))])
    config = replace(
        config,
        dispatch=replace(config.dispatch,
                         policy=draw(st.sampled_from(
                             ["work-aware", "round-robin", "random",
                              "steal"])),
                         queue_depth=draw(st.sampled_from([2, 16]))),
        lane=replace(config.lane,
                     stream_chunk_bytes=draw(st.sampled_from([64, 256])),
                     config_cycles=draw(st.sampled_from([0, 64]))),
        noc=replace(config.noc,
                    multicast=draw(st.booleans()),
                    hop_latency=draw(st.sampled_from([0, 2]))))
    return config


@settings(max_examples=10, deadline=None)
@given(spec=random_program_spec(), config=random_machine_config())
def test_engines_bit_identical_on_random_programs(spec, config):
    """Random dependence-correct programs × seeded-random machines."""
    with engine("reference"):
        reference = Delta(config).run(build_program_from_spec(spec))
    with engine("fast"):
        fast = Delta(config).run(build_program_from_spec(spec))
    _assert_results_identical(reference, fast, "random-program [delta]")
    assert sorted(fast.state["ran"]) == sorted(reference.state["ran"])


@settings(max_examples=6, deadline=None)
@given(spec=random_program_spec(),
       lanes=st.sampled_from([1, 2, 4]),
       seed=st.integers(min_value=0, max_value=3))
def test_engines_bit_identical_on_static_baseline(spec, lanes, seed):
    """The static-parallel runtime obeys the same contract."""
    config = default_baseline_config(lanes=lanes, seed=seed)
    with engine("reference"):
        reference = StaticParallel(config).run(build_program_from_spec(spec))
    with engine("fast"):
        fast = StaticParallel(config).run(build_program_from_spec(spec))
    _assert_results_identical(reference, fast, "random-program [static]")


# ------------------------------------------------- kernel primitives

@pytest.mark.parametrize("env_cls", [Environment, FastEnvironment])
def test_store_fifo_under_both_kernels(env_cls):
    """The bounded Store behaves identically under either kernel."""
    env = env_cls()
    store = Store(env, capacity=2)
    received = []

    def producer():
        for item in range(7):
            yield store.put(item)
        store.close()

    def consumer():
        while True:
            got = yield store.get()
            if got is Store.END:
                return
            received.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == list(range(7))


def test_bandwidth_server_timing_matches_between_kernels():
    """transfer() completion times agree exactly across kernels."""
    sizes = [100, 3, 57, 1024, 8]
    finishes = {}
    for env_cls in (Environment, FastEnvironment):
        env = env_cls()
        server = BandwidthServer(env, bytes_per_cycle=4.0, latency=3)
        times = []

        def proc():
            for size in sizes:
                yield server.transfer(size)
                times.append(env.now)

        env.process(proc())
        env.run()
        finishes[env_cls.__name__] = (times, env.now,
                                      server.total_bytes,
                                      server.utilization())
    assert finishes["FastEnvironment"] == finishes["Environment"]


def test_fast_kernel_until_bound_matches_reference():
    """run(until=...) stops at the same clock on both kernels."""
    for env_cls in (Environment, FastEnvironment):
        env = env_cls()

        def ticker():
            while True:
                yield env.timeout(10)

        env.process(ticker())
        assert env.run(until=35) == 35
        assert env.now == 35


# ------------------------------------------------- engine selection

def test_engine_defaults_to_fast(monkeypatch):
    monkeypatch.delenv(ENGINE_VAR, raising=False)
    assert engine_name() == "fast"
    assert isinstance(make_environment(), FastEnvironment)


def test_engine_switch_selects_reference(monkeypatch):
    monkeypatch.setenv(ENGINE_VAR, "reference")
    assert engine_name() == "reference"
    env = make_environment()
    assert type(env) is Environment
    assert not env.fast


def test_engine_rejects_unknown_name(monkeypatch):
    monkeypatch.setenv(ENGINE_VAR, "turbo")
    with pytest.raises(ValueError, match="REPRO_ENGINE"):
        engine_name()
