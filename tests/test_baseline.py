"""Tests for the static-parallel baseline (repro.baseline.static)."""

import pytest

from repro.arch.config import default_baseline_config
from repro.arch.dfg import dot_product_dfg
from repro.baseline.static import StaticParallel
from repro.core.annotations import ReadSpec, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskType


def leaf_type(name="leaf", trips=64, shared_region=None):
    def reads(args):
        specs = [ReadSpec(nbytes=trips * 4)]
        if shared_region:
            specs.append(ReadSpec(nbytes=2048, region=shared_region,
                                  shared=True))
        return tuple(specs)

    return TaskType(
        name=name, dfg=dot_product_dfg(name),
        kernel=lambda ctx, args: ctx.state.setdefault("ran", []).append(
            args.get("i")),
        trips=lambda args: trips,
        reads=reads,
        writes=lambda args: (WriteSpec(nbytes=4),),
    )


def flat_program(num_tasks=8, **type_kwargs):
    tt = leaf_type(**type_kwargs)
    return Program("p", {},
                   [tt.instantiate({"i": i}) for i in range(num_tasks)])


def two_phase_program():
    tt = leaf_type("phase2")

    def root_kernel(ctx, args):
        ctx.state.setdefault("ran", []).append("root")
        for i in range(4):
            ctx.spawn(tt, {"i": i})

    root = TaskType("root", dot_product_dfg("root"), root_kernel,
                    trips=lambda args: 1)
    return Program("two-phase", {}, [root.instantiate()])


class TestStaticExecution:
    def test_runs_all_tasks(self):
        result = StaticParallel(default_baseline_config(lanes=4)).run(
            flat_program(10))
        assert result.tasks_executed == 10
        assert sorted(result.state["ran"]) == list(range(10))
        assert result.machine == "static"

    def test_phases_add_barriers(self):
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            two_phase_program())
        assert result.counters.get("static.barriers") == 2
        assert result.tasks_executed == 5

    def test_shared_reads_duplicated(self):
        result = StaticParallel(default_baseline_config(lanes=4)).run(
            flat_program(8, shared_region="tbl"))
        # Every task fetched the 2 KiB region privately.
        assert result.counters.get("static.duplicate_shared_bytes") == \
            8 * 2048
        assert result.counters.get("dram.read_bytes") >= 8 * 2048

    def test_deterministic(self):
        cfg = default_baseline_config(lanes=4)
        a = StaticParallel(cfg).run(flat_program(12))
        b = StaticParallel(cfg).run(flat_program(12))
        assert a.cycles == b.cycles

    def test_partition_modes_differ_but_complete(self):
        block = StaticParallel(default_baseline_config(lanes=3),
                               partition="block").run(flat_program(9))
        cyclic = StaticParallel(default_baseline_config(lanes=3),
                                partition="cyclic").run(flat_program(9))
        assert block.tasks_executed == cyclic.tasks_executed == 9

    def test_invalid_partition_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            StaticParallel(default_baseline_config(), partition="magic")

    def test_timeout_raises(self):
        with pytest.raises(RuntimeError, match="did not finish"):
            StaticParallel(default_baseline_config(lanes=1)).run(
                flat_program(8), max_cycles=5)

    def test_stream_deps_round_trip_through_dram(self):
        stage = TaskType(
            "stage", dot_product_dfg("st"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 256,
            writes=lambda args: (WriteSpec(nbytes=1024),),
        )

        def root_kernel(ctx, args):
            a = ctx.spawn(stage)
            ctx.spawn(stage, stream_from=[a])

        root = TaskType("root", dot_product_dfg("r"), root_kernel,
                        trips=lambda args: 1)
        program = Program("rt", {}, [root.instantiate()])
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            program)
        # Producer wrote 1 KiB, consumer re-read it.
        assert result.counters.get("dram.write_bytes") >= 1024
        assert result.counters.get("dram.read_bytes") >= 1024

    def test_barrier_serializes_phases(self):
        """Phase k+1 work cannot start before all phase-k lanes finish."""
        slow = TaskType(
            "slow", dot_product_dfg("slow"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 4096,
        )
        fast_child = TaskType(
            "fast", dot_product_dfg("fast"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 1,
        )

        def rooty(ctx, args):
            ctx.spawn(fast_child)

        root = TaskType("rootA", dot_product_dfg("ra"), rooty,
                        trips=lambda args: 1)
        slow_task = slow.instantiate()
        root_task = root.instantiate()
        program = Program("barrier", {}, [slow_task, root_task])
        result = StaticParallel(default_baseline_config(lanes=2)).run(
            program)
        # With a 4096-trip task in phase 0, total time exceeds it, since
        # the fast phase-1 child could not overlap the barrier.
        assert result.cycles > 4096
