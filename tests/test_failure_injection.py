"""Failure-injection tests: the simulator must fail loudly and precisely.

A modeling bug that silently corrupts results is worse than a crash, so
these tests check that injected faults (broken kernels, impossible
configurations, oversized regions, stalls) surface as the *right* error
with diagnostic content — not as wrong numbers.
"""

import pytest

from repro.arch.config import (
    FabricConfig,
    LaneConfig,
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.arch.mapper import MappingError
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta, ExecutionStalled
from repro.core.dispatcher import Dispatcher
from repro.core.program import Program
from repro.core.task import TaskType
from repro.core.annotations import ReadSpec, WriteSpec
from repro.arch.dfg import cholesky_update_dfg, dot_product_dfg
from repro.sim.sanitize import ModelInvariantError
from repro.workloads.synthetic import SharedReadTasks, UniformTasks


def make_program(kernel, trips=64, reads=None, name="inj"):
    tt = TaskType(
        name=name, dfg=dot_product_dfg(name), kernel=kernel,
        trips=lambda args: trips,
        reads=reads or (lambda args: (ReadSpec(nbytes=trips * 4),)),
        writes=lambda args: (WriteSpec(nbytes=4),),
    )
    return Program(name, {}, [tt.instantiate({"i": i}) for i in range(4)])


class TestKernelFaults:
    def test_kernel_exception_propagates_from_delta(self):
        def bad_kernel(ctx, args):
            raise ZeroDivisionError("injected kernel fault")

        with pytest.raises(ZeroDivisionError, match="injected"):
            Delta(default_delta_config(lanes=2)).run(
                make_program(bad_kernel))

    def test_kernel_exception_propagates_from_static(self):
        def bad_kernel(ctx, args):
            raise ValueError("injected static fault")

        with pytest.raises(ValueError, match="injected static"):
            StaticParallel(default_baseline_config(lanes=2)).run(
                make_program(bad_kernel))

    def test_cost_model_exception_propagates(self):
        tt = TaskType(
            name="badcost", dfg=dot_product_dfg("badcost"),
            kernel=lambda ctx, args: None,
            trips=lambda args: args["missing_key"],  # KeyError at runtime
        )
        program = Program("badcost", {}, [tt.instantiate()])
        with pytest.raises(KeyError):
            Delta(default_delta_config(lanes=1)).run(program)


class TestStructuralFaults:
    def test_unmappable_dfg_raises_mapping_error(self):
        # Cholesky kernel needs MUL cells; a MUL-free fabric cannot host it.
        config = MachineConfig(
            lanes=2,
            lane=LaneConfig(fabric=FabricConfig(rows=3, cols=3,
                                                mul_ratio=0.0)))
        tt = TaskType(
            name="needs_mul", dfg=cholesky_update_dfg("needsmul"),
            kernel=lambda ctx, args: None, trips=lambda args: 8)
        program = Program("nm", {}, [tt.instantiate()])
        with pytest.raises(MappingError):
            Delta(config).run(program)

    def test_stall_diagnostics_name_outstanding_and_queues(self):
        with pytest.raises(ExecutionStalled) as excinfo:
            Delta(default_delta_config(lanes=2)).run(
                UniformTasks(num_tasks=8).build_program(), max_cycles=5)
        message = str(excinfo.value)
        assert "tasks outstanding" in message
        assert "queues" in message
        assert "cycle" in message

    def test_static_stall_uses_same_exception(self):
        with pytest.raises(ExecutionStalled):
            StaticParallel(default_baseline_config(lanes=1)).run(
                UniformTasks(num_tasks=8).build_program(), max_cycles=5)


class TestCapacityFaults:
    def test_oversized_shared_region_streams_through(self):
        """A shared region larger than the scratchpad must not crash —
        it is fetched (mcast.too_large) but never becomes resident."""
        config = default_delta_config(lanes=2)
        import dataclasses

        config = dataclasses.replace(
            config, lane=dataclasses.replace(config.lane,
                                             spad_bytes=4096))
        w = SharedReadTasks(num_tasks=6, region_bytes=64 * 1024, trips=64)
        result = Delta(config).run(w.build_program())
        w.check(result.state)
        assert result.counters.get("mcast.too_large") > 0

    def test_prefetch_survives_tiny_scratchpad(self):
        import dataclasses

        from repro.arch.config import FeatureFlags

        config = default_delta_config(
            lanes=2, features=FeatureFlags(prefetch=True))
        config = dataclasses.replace(
            config, lane=dataclasses.replace(config.lane, spad_bytes=512))
        w = UniformTasks(num_tasks=12, trips=512)  # reads 2 KiB > spad
        result = Delta(config).run(w.build_program())
        w.check(result.state)  # prefetch skipped, correctness intact


class TestProgramFaults:
    def test_empty_program_rejected_at_construction(self):
        with pytest.raises(ValueError, match="no initial tasks"):
            Program("empty", {}, [])

    def test_negative_read_rejected_at_resolution(self):
        tt = TaskType(
            name="neg", dfg=dot_product_dfg("neg"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 4,
            reads=lambda args: (ReadSpec(nbytes=-1),))
        program = Program("neg", {}, [tt.instantiate()])
        with pytest.raises(ValueError, match="nbytes"):
            Delta(default_delta_config(lanes=1)).run(program)


class TestSanitizerCatches:
    """Each injected fault class surfaces as a *named* model invariant —
    the sanitizer turns silent corruption into a precise diagnostic."""

    def test_broken_kernel_duplicate_spawn_is_task_conservation(self):
        """A kernel that hands the runtime the same child twice would
        silently execute it twice; the sanitizer names the offender."""
        child_type = TaskType(
            name="child", dfg=dot_product_dfg("child"),
            kernel=lambda ctx, args: None, trips=lambda args: 8)

        def buggy_kernel(ctx, args):
            child = ctx.spawn(child_type, {"i": 0})
            ctx.spawned.append(child)  # the injected model bug

        parent_type = TaskType(
            name="parent", dfg=dot_product_dfg("parent"),
            kernel=buggy_kernel, trips=lambda args: 8)
        program = Program("dupspawn", {}, [parent_type.instantiate()])
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(default_delta_config(lanes=2).with_sanitize(True)
                  ).run(program)
        err = excinfo.value
        assert err.invariant == "task-conservation"
        assert "more than once" in str(err)
        assert err.task is not None and "child" in err.task

    def test_dangling_dependence_is_dependence_legality(self, monkeypatch):
        """A dispatcher that drops its readiness waits lets a consumer
        start mid-producer; the violation names both tasks."""

        def eager_submit(self, task):
            self._outstanding += 1
            self.counters.add("dispatch.submitted")
            self.sanitizer.task_submitted(task, self.env.now)
            self._make_ready(task)  # bug: dependences ignored

        monkeypatch.setattr(Dispatcher, "submit", eager_submit)
        slow_type = TaskType(
            name="producer", dfg=dot_product_dfg("producer"),
            kernel=lambda ctx, args: None, trips=lambda args: 4096)
        producer = slow_type.instantiate()
        fast_type = TaskType(
            name="consumer", dfg=dot_product_dfg("consumer"),
            kernel=lambda ctx, args: None, trips=lambda args: 8)
        consumer = fast_type.instantiate(after=[producer])
        program = Program("dangling", {}, [producer, consumer])
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(default_delta_config(lanes=2).with_sanitize(True)
                  ).run(program)
        err = excinfo.value
        assert err.invariant == "dependence-legality"
        assert "producer" in str(err) and "consumer" in str(err)

    def test_oversubscribed_sharing_set_is_multicast_consistency(self):
        """A sharing oracle that under-counts a region's readers is a
        recovered-structure bug: the requests overrun the declared set."""
        workload = SharedReadTasks(num_tasks=6)
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(default_delta_config(lanes=2).with_sanitize(True)).run(
                workload.build_program(), sharing_degrees={"table": 2})
        err = excinfo.value
        assert err.invariant == "multicast-consistency"
        assert "table" in str(err) and "2 readers" in str(err)

    def test_oversized_region_runs_clean_under_sanitizer(self):
        """The too-large streaming path is legal behaviour, not a model
        bug — the sanitizer must not flag it (no false positives)."""
        import dataclasses

        config = default_delta_config(lanes=2).with_sanitize(True)
        config = dataclasses.replace(
            config, lane=dataclasses.replace(config.lane,
                                             spad_bytes=4096))
        w = SharedReadTasks(num_tasks=6, region_bytes=64 * 1024, trips=64)
        result = Delta(config).run(w.build_program())
        w.check(result.state)
        assert result.counters.get("mcast.too_large") > 0

    def test_stall_diagnostics_include_sanitizer_report(self):
        """A stalled sanitized run names how far each task got — the
        conservation snapshot rides on the ExecutionStalled message."""
        with pytest.raises(ExecutionStalled) as excinfo:
            Delta(default_delta_config(lanes=2).with_sanitize(True)).run(
                UniformTasks(num_tasks=8).build_program(), max_cycles=5)
        message = str(excinfo.value)
        assert "sanitizer:" in message
        assert "submitted" in message and "completed" in message
        assert "unfinished" in message


class TestRecovery:
    """Injected hardware faults (repro.sim.faults) recover or fail loudly.

    The deep recovery matrix lives in tests/test_faults.py; here we pin
    the failure-injection angle — an exhausted retry budget must surface
    as a diagnostic UnrecoverableFault naming fault, task, lane and cycle,
    never as wrong numbers or a hang.
    """

    def test_retry_exhaustion_names_fault_task_lane_cycle(self):
        from repro.sim.faults import (
            FaultPlan,
            RetryPolicy,
            UnrecoverableFault,
        )

        plan = FaultPlan(task_fault_rate=1.0,
                         retry=RetryPolicy(max_attempts=2,
                                           backoff_cycles=8.0))
        config = default_delta_config(lanes=2).with_faults(plan)
        with pytest.raises(UnrecoverableFault) as excinfo:
            Delta(config).run(make_program(lambda ctx, args: None))
        err = excinfo.value
        assert err.fault == "transient-task-fault"
        assert err.task == "inj[0]" or err.task.startswith("inj")
        assert err.lane in (0, 1)
        assert err.cycle is not None and err.cycle >= 0
        message = str(err)
        assert "[transient-task-fault]" in message
        assert "task=" in message
        assert "lane=" in message
        assert "cycle=" in message

    def test_stall_diagnostics_include_lane_and_queue_snapshot(self):
        """Every ExecutionStalled carries per-lane occupancy and the
        dispatcher queue state, sanitizer or not."""
        with pytest.raises(ExecutionStalled) as excinfo:
            Delta(default_delta_config(lanes=2)).run(
                UniformTasks(num_tasks=8).build_program(), max_cycles=5)
        message = str(excinfo.value)
        assert "lane0: busy=" in message
        assert "lane1: busy=" in message
        assert "tasks retired" in message
        assert "dispatcher:" in message
        assert "pending" in message

    def test_static_stall_diagnostics_include_lane_snapshot(self):
        with pytest.raises(ExecutionStalled) as excinfo:
            StaticParallel(default_baseline_config(lanes=2)).run(
                UniformTasks(num_tasks=8).build_program(), max_cycles=5)
        message = str(excinfo.value)
        assert "lane0: busy=" in message
        assert "tasks retired" in message
