"""Tests for the extension features: config affinity and stream prefetch."""

import dataclasses

import pytest

from repro.arch.config import FeatureFlags, default_delta_config
from repro.core.delta import Delta
from repro.workloads.synthetic import (
    ConfigThrash,
    SharedReadTasks,
    UniformTasks,
)


def thrash_config(lanes=4, config_cycles=512, cache_entries=1,
                  features=None):
    cfg = default_delta_config(lanes=lanes,
                               features=features or FeatureFlags())
    return dataclasses.replace(
        cfg, lane=dataclasses.replace(cfg.lane,
                                      config_cycles=config_cycles,
                                      config_cache_entries=cache_entries))


def config_misses(result):
    return sum(v for k, v in result.counters.items()
               if k.endswith(".config_misses"))


class TestConfigAffinity:
    def test_reduces_reconfigurations_in_regime(self):
        w = ConfigThrash(num_tasks=48, num_types=4)
        base = Delta(thrash_config()).run(w.build_program())
        aff = Delta(thrash_config(
            features=FeatureFlags(config_affinity=True))).run(
            w.build_program())
        w.check(aff.state)
        assert config_misses(aff) < config_misses(base)
        assert aff.cycles <= base.cycles
        assert aff.counters.get("dispatch.affinity_matches") > 0

    def test_functional_results_unchanged(self):
        w = ConfigThrash(num_tasks=32, num_types=3)
        result = Delta(thrash_config(
            features=FeatureFlags(config_affinity=True))).run(
            w.build_program())
        w.check(result.state)

    def test_off_by_default(self):
        w = ConfigThrash(num_tasks=16)
        result = Delta(thrash_config()).run(w.build_program())
        assert result.counters.get("dispatch.affinity_matches") == 0

    def test_single_type_workload_unaffected(self):
        w = UniformTasks(num_tasks=16)
        base = Delta(default_delta_config(lanes=4)).run(w.build_program())
        aff = Delta(default_delta_config(
            lanes=4,
            features=FeatureFlags(config_affinity=True))).run(
            w.build_program())
        # One type everywhere: affinity cannot change the miss count.
        assert config_misses(aff) == config_misses(base)


class TestPrefetch:
    def test_prefetch_used_and_faster_on_latency_bound_tasks(self):
        w = UniformTasks(num_tasks=48, trips=96)
        base = Delta(default_delta_config(lanes=4)).run(w.build_program())
        pf = Delta(default_delta_config(
            lanes=4, features=FeatureFlags(prefetch=True))).run(
            w.build_program())
        w.check(pf.state)
        assert pf.counters.get("prefetch.used") > 0
        assert pf.cycles <= base.cycles * 1.02  # never materially worse

    def test_prefetch_off_by_default(self):
        w = UniformTasks(num_tasks=8)
        result = Delta(default_delta_config(lanes=2)).run(
            w.build_program())
        assert result.counters.get("prefetch.issued") == 0

    def test_prefetch_skips_shared_only_tasks(self):
        w = SharedReadTasks(num_tasks=12, trips=64)
        # Shared region is multicast; the private read is tiny. Prefetch
        # should still behave correctly.
        result = Delta(default_delta_config(
            lanes=4, features=FeatureFlags(prefetch=True))).run(
            w.build_program())
        w.check(result.state)

    def test_prefetch_functional_correctness(self):
        w = UniformTasks(num_tasks=24, trips=64)
        result = Delta(default_delta_config(
            lanes=2, features=FeatureFlags(prefetch=True))).run(
            w.build_program())
        w.check(result.state)

    def test_prefetch_bytes_counted(self):
        w = UniformTasks(num_tasks=24, trips=128)
        result = Delta(default_delta_config(
            lanes=2, features=FeatureFlags(prefetch=True))).run(
            w.build_program())
        if result.counters.get("prefetch.used"):
            assert result.counters.get("prefetch.bytes") > 0


class TestFeatureLabels:
    def test_labels_include_extensions(self):
        flags = FeatureFlags(config_affinity=True, prefetch=True)
        assert "+affinity" in flags.label()
        assert "+prefetch" in flags.label()

    def test_base_label(self):
        assert FeatureFlags(False, False, False).label() == "base"
