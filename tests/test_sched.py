"""The scheduler lab: registry, policy protocol, and the tournament.

Covers the `repro.sched` seam end to end:

- the name-keyed registry is the single source of truth (config
  validation and the CLI ``--policy`` choices derive from it);
- each tournament policy's decision rule, driven directly against a
  bare dispatcher;
- every registered policy completes every registered workload on both
  runtimes, deterministically, sanitizer-clean, and under lane faults
  (steal policies must never involve a dead lane);
- the opt-in ``sched.*`` counter group is purely observational;
- the policy-matrix tournament produces a ranked table.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    DispatchConfig,
    FeatureFlags,
    default_baseline_config,
    default_delta_config,
)
from repro.arch.dfg import dot_product_dfg
from repro.baseline.static import StaticParallel
from repro.core.annotations import WorkHint
from repro.core.delta import Delta
from repro.core.dispatcher import Dispatcher
from repro.core.task import TaskType
from repro.sched import (
    SchedulingPolicy,
    StructureHints,
    create_policy,
    policy_names,
    policy_uses_structure,
    register_policy,
)
from repro.sched.structure import hints_from_factory, hints_from_graph
from repro.sim import Counters, Environment
from repro.sim.faults import FaultPlan, LaneFailure
from repro.util.fingerprint import result_stats
from repro.util.rng import DeterministicRng
from repro.workloads import get_workload
from repro.workloads.registry import workload_names
from tests.test_properties import build_program_from_spec, random_program_spec

EXPECTED_POLICIES = (
    "block-partition", "critical-path", "random", "round-robin",
    "steal", "steal-tuned", "streaming-depth-first", "work-aware",
)


# ------------------------------------------------------------ harness

def make_type(name="t"):
    return TaskType(
        name=name, dfg=dot_product_dfg(name),
        kernel=lambda ctx, args: None,
        trips=lambda args: args.get("trips", 10),
        work_hint=WorkHint(lambda args: args.get("trips", 10)),
    )


def make_dispatcher(env, lanes=2, policy="work-aware",
                    features=None, **cfg_kwargs):
    config = DispatchConfig(policy=policy, **cfg_kwargs)
    return Dispatcher(env, Counters(), config, lanes,
                      features or FeatureFlags(),
                      DeterministicRng("test"))


def drain_worker(env, dispatcher, lane_id, log, service=10):
    """A fake lane worker: pop, wait ``service`` cycles, complete."""

    def worker():
        queue = dispatcher.queues[lane_id]
        while True:
            task = yield queue.get()
            dispatcher.kick()
            dispatcher.task_started(task)
            log.append((env.now, lane_id, task.args.get("i")))
            yield env.timeout(service)
            dispatcher.task_completed(task)

    return env.process(worker())


# ------------------------------------------------------------ registry

class TestRegistry:
    def test_all_builtins_registered(self):
        assert policy_names() == EXPECTED_POLICIES

    def test_create_policy_returns_fresh_instances(self):
        a = create_policy("work-aware")
        b = create_policy("work-aware")
        assert a is not b
        assert a.name == "work-aware"

    def test_create_policy_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="work-aware"):
            create_policy("fifo-lifo")

    def test_reregistering_same_class_is_noop(self):
        from repro.sched.policies import WorkAwarePolicy

        assert register_policy(WorkAwarePolicy) is WorkAwarePolicy
        assert policy_names() == EXPECTED_POLICIES

    def test_claiming_taken_name_is_rejected(self):
        class Impostor(SchedulingPolicy):
            name = "work-aware"

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Impostor)

    def test_nameless_policy_is_rejected(self):
        class Nameless(SchedulingPolicy):
            pass

        with pytest.raises(ValueError, match="non-empty"):
            register_policy(Nameless)

    def test_uses_structure_flags(self):
        assert policy_uses_structure("critical-path")
        assert policy_uses_structure("block-partition")
        assert policy_uses_structure("steal-tuned")
        assert not policy_uses_structure("work-aware")
        assert not policy_uses_structure("streaming-depth-first")
        assert not policy_uses_structure("no-such-policy")

    def test_dispatch_config_validates_from_registry(self):
        with pytest.raises(ValueError) as err:
            DispatchConfig(policy="bogus")
        # The error names every registered policy — proof the config
        # layer reads the registry, not a hardcoded list.
        for name in EXPECTED_POLICIES:
            assert name in str(err.value)

    def test_every_registered_policy_is_a_valid_config(self):
        for name in policy_names():
            assert DispatchConfig(policy=name).policy == name

    def test_cli_choices_come_from_registry(self):
        import argparse

        from repro.cli import _build_parser

        seen = []

        def collect(p):
            for action in p._actions:
                if action.dest == "policy":
                    seen.append(tuple(action.choices))
                elif isinstance(action, argparse._SubParsersAction):
                    for sub in action.choices.values():
                        collect(sub)

        collect(_build_parser())
        assert seen, "no --policy option found"
        for choices in seen:
            assert choices == policy_names()


# ------------------------------------------------------------ hints

def chain_spec(works):
    """(trips, write_kb, dep_kind, dep_target, shared) AFTER-chain spec."""
    spec = [(works[0], 0, "none", None, False)]
    for i, work in enumerate(works[1:], start=1):
        spec.append((work, 0, "after", i - 1, False))
    return spec


class TestStructureHints:
    def test_after_chain_bottom_levels_accumulate(self):
        from repro.graph.ir import recover_structure

        graph = recover_structure(
            build_program_from_spec(chain_spec([100, 10, 1])))
        hints = hints_from_graph(graph)
        # AFTER edges serialize: each task's bottom level includes all
        # downstream work. Tasks share a type, so keys differ by depth.
        assert hints.priority[("rand", 0)] == pytest.approx(111)
        assert hints.priority[("rand", 1)] == pytest.approx(11)
        assert hints.priority[("rand", 2)] == pytest.approx(1)
        assert hints.phase_sizes == (1, 1, 1)
        assert hints.task_count == 3
        assert hints.total_work == pytest.approx(111)
        assert hints.cp_work == pytest.approx(111)
        assert hints.parallelism == pytest.approx(1.0)
        assert hints.mean_task_work == pytest.approx(111 / 3)

    def test_stream_chain_overlaps_bottom_levels(self):
        from repro.graph.ir import recover_structure

        spec = [(100, 64, "none", None, False),
                (40, 0, "stream", 0, False)]
        graph = recover_structure(build_program_from_spec(spec))
        hints = hints_from_graph(graph)
        # STREAM edges overlap: the producer's level is the max of its
        # own work and its consumer's level, not the sum.
        assert hints.priority[("rand", 0)] == pytest.approx(100)
        assert hints.priority[("rand", 1)] == pytest.approx(40)
        assert hints.parallelism > 1.0

    def test_group_priority_takes_max_member(self):
        from repro.graph.ir import recover_structure

        # Two depth-0 tasks of the same type: one feeds a long AFTER
        # chain, one is a leaf. Their shared (type, depth) key must get
        # the *critical* member's level.
        spec = [(10, 0, "none", None, False),
                (10, 0, "none", None, False),
                (500, 0, "after", 0, False)]
        graph = recover_structure(build_program_from_spec(spec))
        hints = hints_from_graph(graph)
        assert hints.priority[("rand", 0)] == pytest.approx(510)

    def test_hints_from_factory_builds_a_twin(self):
        workload = get_workload("micro-chain")
        hints = hints_from_factory(workload.build_program)
        assert hints is not None
        assert hints.task_count > 0
        assert hints.cp_work > 0
        # The factory's own program is untouched: a full run on a fresh
        # build still verifies (recovery ran on a twin, not on ours).
        result = Delta(default_delta_config(lanes=2)).run(
            workload.build_program())
        workload.check(result.state)

    def test_hints_from_factory_degrades_to_none(self):
        def broken():
            program = build_program_from_spec([(5, 0, "none", None, False)])
            # A self-dependence makes recovery fail graph validation.
            task = program.initial_tasks[0]
            task.after = (task,)
            return program

        assert hints_from_factory(broken) is None


# ------------------------------------------------------------ decisions

class TestCriticalPathPolicy:
    def test_dispatch_order_follows_attached_priority(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, policy="critical-path",
                            dispatch_cycles=0)
        # Type "b" outranks "a" despite having less work of its own.
        d.attach_hints(StructureHints(
            priority={("a", 0): 10.0, ("b", 0): 900.0}, task_count=2))
        order = []
        drain_worker(env, d, 0, order, service=1)
        d.submit(make_type("a").instantiate({"i": 0, "trips": 100}))
        d.submit(make_type("b").instantiate({"i": 1, "trips": 10}))
        env.run()
        assert [i for _t, _l, i in order] == [1, 0]

    def test_without_hints_falls_back_to_work(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, policy="critical-path",
                            dispatch_cycles=0)
        order = []
        drain_worker(env, d, 0, order, service=1)
        tt = make_type()
        d.submit(tt.instantiate({"i": 0, "trips": 10}))
        d.submit(tt.instantiate({"i": 1, "trips": 500}))
        d.submit(tt.instantiate({"i": 2, "trips": 50}))
        env.run()
        assert [i for _t, _l, i in order][0] == 1

    @pytest.mark.parametrize("sched_stats,expected", [(False, 0.0),
                                                      (True, 1.0)])
    def test_inversion_counted_only_with_sched_stats(self, sched_stats,
                                                     expected):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="critical-path",
                            dispatch_cycles=0, sched_stats=sched_stats)
        d.attach_hints(StructureHints(
            priority={("hot", 0): 900.0, ("cold", 0): 1.0}, task_count=2))
        producer = make_type("p").instantiate({"i": 9})
        producer.lane_id = 1
        producer.started = True
        hot = make_type("hot").instantiate({"i": 0},
                                           stream_from=[producer])
        cold = make_type("cold").instantiate({"i": 1})
        # The hot task may only use lane 0 (lane 1 holds its in-flight
        # producer); saturate lane 0 past LOW_WATER, so the cold task
        # dispatches (to lane 1) while the hot one is passed over.
        for i in range(Dispatcher.LOW_WATER):
            d.queues[0].put(make_type("fill").instantiate({"i": 90 + i}))
        d.pool.extend([hot, cold])
        picked = d.policy.select(d)
        assert picked is not None and picked[0] is cold
        assert d.counters.get("sched.priority_inversions") == expected


class TestStreamingDepthFirstPolicy:
    def test_live_stream_consumers_come_first(self):
        from repro.sched.policies import StreamingDepthFirstPolicy

        key = StreamingDepthFirstPolicy._pool_key
        tt = make_type()
        producer = tt.instantiate({"i": 0})
        producer.started = True
        consumer = tt.instantiate({"i": 1}, stream_from=[producer])
        idle_producer = tt.instantiate({"i": 2})
        blocked = tt.instantiate({"i": 3}, stream_from=[idle_producer])
        independent = tt.instantiate({"i": 4})
        assert key(consumer) < key(blocked)
        assert key(consumer) < key(independent)
        # Completed producers stop conferring urgency.
        producer.completed = True
        assert key(consumer)[0] == 1

    def test_deeper_tasks_beat_shallower(self):
        from repro.sched.policies import StreamingDepthFirstPolicy

        key = StreamingDepthFirstPolicy._pool_key
        tt = make_type()
        shallow = tt.instantiate({"i": 0})
        deep = tt.instantiate({"i": 1}, after=[shallow])
        assert deep.depth > shallow.depth
        assert key(deep) < key(shallow)

    def test_end_to_end_dispatch_prefers_live_consumer(self):
        # One lane, so the pool *order* is what decides: the consumer of
        # an in-flight producer must dispatch ahead of the
        # earlier-arrived independent task.
        env = Environment()
        d = make_dispatcher(env, lanes=1, policy="streaming-depth-first",
                            dispatch_cycles=0)
        order = []
        drain_worker(env, d, 0, order, service=1)
        tt = make_type()
        producer = tt.instantiate({"i": 0})
        producer.started = True  # in flight elsewhere
        consumer = tt.instantiate({"i": 1}, stream_from=[producer])
        independent = tt.instantiate({"i": 2})
        d.submit(independent)
        d.submit(consumer)  # ready at once: its producer already started
        env.run()
        assert [i for _t, _l, i in order] == [1, 2]


class TestBlockPartitionPolicy:
    def test_blocks_follow_phase_slots(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="block-partition",
                            dispatch_cycles=0)
        d.attach_hints(StructureHints(phase_sizes=(4,), task_count=4))
        log = []
        drain_worker(env, d, 0, log, service=1)
        drain_worker(env, d, 1, log, service=1)
        tt = make_type()
        for i in range(4):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        placements = {i: lane for _t, lane, i in log}
        # Block split of 4 slots over 2 lanes: first half lane 0,
        # second half lane 1, by arrival order.
        assert placements == {0: 0, 1: 0, 2: 1, 3: 1}

    def test_without_hints_degrades_to_cyclic(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="block-partition",
                            dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log, service=1)
        drain_worker(env, d, 1, log, service=1)
        tt = make_type()
        for i in range(4):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        placements = {i: lane for _t, lane, i in log}
        assert placements == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_dead_target_falls_back_to_surviving_lane(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="block-partition",
                            dispatch_cycles=0)
        d.attach_hints(StructureHints(phase_sizes=(2,), task_count=2))
        d.dead_lanes.add(0)  # slots point at lane 0; it is gone
        log = []
        drain_worker(env, d, 1, log, service=1)
        tt = make_type()
        d.submit(tt.instantiate({"i": 0}))
        d.submit(tt.instantiate({"i": 1}))
        env.run()
        assert {lane for _t, lane, _i in log} == {1}
        assert d.drained.triggered

    def test_partition_hook_matches_static_splitters(self):
        from repro.core.program import partition_block, partition_cyclic

        policy = create_policy("block-partition")
        tasks = [make_type().instantiate({"i": i}) for i in range(7)]
        assert policy.partition(tasks, 3) == partition_block(tasks, 3)
        assert policy.partition(tasks, 3, mode="cyclic") == \
            partition_cyclic(tasks, 3)


class TestStealTunedPolicy:
    def bind(self, policy, steal_cycles=48, lanes=4, **cfg_kwargs):
        config = DispatchConfig(policy="steal-tuned",
                                steal_cycles=steal_cycles, **cfg_kwargs)
        policy.bind(config, lanes)
        return config

    def test_defaults_without_hints(self):
        policy = create_policy("steal-tuned")
        self.bind(policy)
        assert policy._threshold == 1
        assert policy.idle_backoff == 16

    def test_threshold_scales_with_task_cost(self):
        import math

        policy = create_policy("steal-tuned")
        config = self.bind(policy, steal_cycles=48)
        # Tiny tasks: stealing half a shallow backlog cannot amortize
        # the latency, so the threshold rises.
        policy.attach(StructureHints(total_work=40.0, cp_work=10.0,
                                     task_count=40))
        cost = 1.0 + config.work_overhead
        assert policy._threshold == max(1, math.ceil(96.0 / cost))
        # Huge tasks: any backlog is worth it.
        policy.attach(StructureHints(total_work=4e6, cp_work=10.0,
                                     task_count=4))
        assert policy._threshold == 1

    def test_backoff_doubles_when_parallelism_starved(self):
        policy = create_policy("steal-tuned")
        self.bind(policy, steal_cycles=48, lanes=8)
        # parallelism = 4 < 8 lanes: poll half as often.
        policy.attach(StructureHints(total_work=400.0, cp_work=100.0,
                                     task_count=4))
        assert policy.idle_backoff == 32
        # Ample parallelism: the plain steal_cycles/3 cadence.
        policy.attach(StructureHints(total_work=6400.0, cp_work=100.0,
                                     task_count=64))
        assert policy.idle_backoff == 16

    def test_rebind_resets_tuning(self):
        policy = create_policy("steal-tuned")
        self.bind(policy, work_overhead=0)
        policy.attach(StructureHints(total_work=40.0, cp_work=10.0,
                                     task_count=40))
        assert policy._threshold > 1
        self.bind(policy)
        assert policy._threshold == 1
        assert policy.idle_backoff == 16
        assert policy.hints is None

    def test_threshold_gates_victim_choice(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal-tuned",
                            dispatch_cycles=0, steal_cycles=5)
        tt = make_type()
        for i in range(4):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        assert d.queues[0].level == 2
        d.policy._threshold = 3  # richest backlog (2) is below threshold

        def thief():
            stolen = yield from d.try_steal(1)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 0
        assert env.now == 0  # skipped before paying steal latency
        d.policy._threshold = 1
        p = env.process(thief())
        env.run()
        assert p.value >= 1


# ------------------------------------------------------------ steal x faults

class TestStealUnderFaults:
    def fill_lane0(self, d, n=4):
        tt = make_type()
        for i in range(n):
            d.submit(tt.instantiate({"i": i}))

    def test_dead_lane_is_never_the_victim(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal",
                            dispatch_cycles=0, steal_cycles=5)
        self.fill_lane0(d)
        env.run()
        assert d.queues[0].level == 2
        # Lane 0 dies with its backlog still visible on the queue (the
        # victim filter must not rely on fail_lane's rescue).
        d.dead_lanes.add(0)

        def thief():
            stolen = yield from d.try_steal(1)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 0
        assert d.counters.get("dispatch.steals") == 0

    def test_dead_thief_never_steals(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal",
                            dispatch_cycles=0, steal_cycles=5)
        self.fill_lane0(d)
        env.run()
        rich_before = d.queues[0].level
        count_before = d.pending_count[1]
        work_before = d.pending_work[1]
        d.dead_lanes.add(1)

        def thief():
            stolen = yield from d.try_steal(1)
            return stolen

        p = env.process(thief())
        env.run()
        # No steal, no latency paid, no work credited to the dead lane.
        assert p.value == 0
        assert env.now == 0
        assert d.queues[0].level == rich_before
        assert d.pending_count[1] == count_before
        assert d.pending_work[1] == work_before

    def test_fail_lane_rescues_then_redispatches_live_only(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal",
                            dispatch_cycles=0)
        self.fill_lane0(d)
        env.run()
        backlog = d.queues[0].level
        assert backlog > 0
        rescued = d.fail_lane(0)
        assert rescued == backlog
        log = []
        drain_worker(env, d, 1, log, service=1)
        env.run()
        assert d.drained.triggered
        assert {lane for _t, lane, _i in log} == {1}

    @pytest.mark.parametrize("policy", ["steal", "steal-tuned"])
    def test_lane_failure_run_is_sanitizer_clean(self, policy):
        workload = get_workload("micro-skewed")
        plan = FaultPlan(lane_failures=(LaneFailure(lane=1, cycle=500.0),))
        config = (default_delta_config(lanes=4).with_policy(policy)
                  .with_sanitize(True).with_faults(plan))
        sched_hints = None
        if policy_uses_structure(policy):
            sched_hints = hints_from_factory(workload.build_program)
        result = Delta(config).run(workload.build_program(),
                                   sched_hints=sched_hints)
        workload.check(result.state)
        assert result.counters.get("faults.lane_failstop") == 1
        # A dead lane gains no work after its fail-stop: every task
        # completed, so conservation held (the sanitizer enforces the
        # per-event invariants on the way).
        assert result.tasks_executed > 0


# ------------------------------------------------------------ seam coverage

ALL_WORKLOADS = tuple(workload_names())
DETERMINISM_WORKLOADS = ("micro-chain", "micro-shared", "spmv")


class TestPolicyCoverage:
    @pytest.mark.parametrize("policy", EXPECTED_POLICIES)
    def test_policy_completes_every_workload_on_delta(self, policy):
        config = default_delta_config(lanes=4).with_policy(policy)
        for name in ALL_WORKLOADS:
            workload = get_workload(name)
            sched_hints = None
            if policy_uses_structure(policy):
                sched_hints = hints_from_factory(workload.build_program)
            result = Delta(config).run(workload.build_program(),
                                       sched_hints=sched_hints)
            workload.check(result.state)
            assert result.cycles > 0

    @pytest.mark.parametrize("policy", EXPECTED_POLICIES)
    def test_policy_partitions_static_baseline(self, policy):
        config = default_baseline_config(lanes=4)
        config = config.with_policy(policy)
        runner = StaticParallel(config)
        for name in ("micro-chain", "histogram", "wavefront"):
            workload = get_workload(name)
            result = runner.run(workload.build_program())
            workload.check(result.state)

    @pytest.mark.parametrize("policy", EXPECTED_POLICIES)
    def test_policy_is_seed_deterministic(self, policy):
        config = default_delta_config(lanes=4).with_policy(policy)
        for name in DETERMINISM_WORKLOADS:
            workload = get_workload(name)
            hints = (hints_from_factory(workload.build_program)
                     if policy_uses_structure(policy) else None)
            a = Delta(config).run(workload.build_program(),
                                  sched_hints=hints)
            b = Delta(config).run(workload.build_program(),
                                  sched_hints=hints)
            assert result_stats(a) == result_stats(b)

    @settings(max_examples=12, deadline=None)
    @given(spec=random_program_spec(),
           policy=st.sampled_from(EXPECTED_POLICIES),
           lanes=st.sampled_from([1, 2, 4]))
    def test_any_policy_runs_any_program_sanitizer_clean(
            self, spec, policy, lanes):
        program = build_program_from_spec(spec)
        config = (default_delta_config(lanes=lanes).with_policy(policy)
                  .with_sanitize(True))
        hints = (hints_from_factory(lambda: build_program_from_spec(spec))
                 if policy_uses_structure(policy) else None)
        result = Delta(config).run(program, sched_hints=hints)
        # Task conservation: every spec task ran exactly once.
        assert sorted(result.state["ran"]) == list(range(len(spec)))
        assert result.tasks_executed == len(spec)


# ------------------------------------------------------------ observability

class TestSchedStats:
    def test_sched_stats_is_observational(self):
        workload = get_workload("micro-shared")
        base = default_delta_config(lanes=4)
        plain = Delta(base).run(workload.build_program())
        armed = Delta(base.with_sched_stats(True)).run(
            workload.build_program())
        assert armed.cycles == plain.cycles
        assert armed.tasks_executed == plain.tasks_executed
        strip = {k: v for k, v in armed.counters.snapshot()
                 if not k.startswith("sched.")}
        assert strip == dict(plain.counters.snapshot())

    def test_default_run_writes_no_sched_counters(self):
        result = Delta(default_delta_config(lanes=4)).run(
            get_workload("micro-shared").build_program())
        assert not [k for k, _v in result.counters.snapshot()
                    if k.startswith("sched.")]

    def test_armed_run_records_pool_peak(self):
        result = Delta(default_delta_config(lanes=4)
                       .with_sched_stats(True)).run(
            get_workload("micro-shared").build_program())
        assert result.counters.get("sched.pool_peak") >= 1

    def test_armed_steal_run_records_attempts(self):
        result = Delta(default_delta_config(lanes=4).with_policy("steal")
                       .with_sched_stats(True)).run(
            get_workload("micro-skewed").build_program())
        assert result.counters.get("sched.steal_attempts") > 0

    def test_metrics_bus_declares_sched_group(self):
        from repro.machine.metrics import MetricsBus

        bus = MetricsBus()
        bus.sched.set_max("pool_peak", 3)
        bus.sched.add("steal_attempts")
        assert bus.get("sched.pool_peak") == 3
        assert bus.get("sched.steal_attempts") == 1


# ------------------------------------------------------------ tournament

class TestPolicyMatrix:
    def test_smoke_two_workloads(self):
        from repro.eval.policy_matrix import (
            run_policy_matrix,
            tournament_winner,
        )
        from repro.eval.tables import policy_matrix_table

        workloads = [get_workload("micro-chain"),
                     get_workload("micro-shared")]
        outcomes = run_policy_matrix(
            lanes=4, workloads=workloads,
            policies=("work-aware", "steal", "critical-path"), jobs=1)
        assert [o.policy for o in outcomes] == \
            ["work-aware", "steal", "critical-path"]
        for outcome in outcomes:
            assert outcome.speedup > 0
            assert outcome.faulty_speedup > 0
            assert not outcome.failures
        steal_row = outcomes[1]
        assert steal_row.steal_attempts > 0
        winner = tournament_winner(outcomes)
        assert winner.speedup == max(o.speedup for o in outcomes)
        table = policy_matrix_table(outcomes, lanes=4)
        assert "*" + winner.policy in table
        assert "policy tournament" in table

    def test_canned_plan_is_fixed_and_nonempty(self):
        from repro.eval.policy_matrix import canned_fault_plan

        plan = canned_fault_plan()
        assert not plan.is_empty()
        assert plan == canned_fault_plan()  # every policy faces the same

    def test_empty_tournament_rejected(self):
        from repro.eval.policy_matrix import tournament_winner

        with pytest.raises(ValueError):
            tournament_winner([])

    def test_degradation_math(self):
        from repro.eval.policy_matrix import PolicyOutcome

        row = PolicyOutcome(policy="x", uses_structure=False, speedup=2.0,
                            faulty_speedup=1.5, pool_peak=0,
                            steal_attempts=0, steal_hits=0, inversions=0)
        assert row.degradation == pytest.approx(0.25)
        nan_row = PolicyOutcome(policy="x", uses_structure=False,
                                speedup=2.0, faulty_speedup=float("nan"),
                                pool_peak=0, steal_attempts=0,
                                steal_hits=0, inversions=0)
        assert nan_row.degradation != nan_row.degradation
