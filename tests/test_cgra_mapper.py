"""Unit tests for the fabric model and the DFG mapper."""

import pytest

from repro.arch.cgra import Fabric, FabricCapacityError
from repro.arch.config import FabricConfig
from repro.arch.dfg import (
    Dfg,
    FuClass,
    Op,
    cholesky_update_dfg,
    dot_product_dfg,
    merge_dfg,
    stencil5_dfg,
)
from repro.arch.mapper import Mapper, MappingError


@pytest.fixture(autouse=True)
def clear_mapping_cache():
    Mapper.clear_cache()
    yield
    Mapper.clear_cache()


# ------------------------------------------------------------------ Fabric

def test_fabric_cell_count():
    fabric = Fabric(FabricConfig(rows=4, cols=6))
    assert len(fabric.cells) == 24
    assert fabric.config.cells == 24


def test_fabric_capability_ratios():
    cfg = FabricConfig(rows=4, cols=4, mul_ratio=0.5, mem_ratio=0.25)
    fabric = Fabric(cfg)
    assert fabric.count_supporting(FuClass.MUL) == 8
    assert fabric.count_supporting(FuClass.MEM) == 4
    assert fabric.count_supporting(FuClass.ALU) == 16


def test_fabric_deterministic():
    a = Fabric(FabricConfig(rows=3, cols=3))
    b = Fabric(FabricConfig(rows=3, cols=3))
    for pos in a.positions:
        assert a.cells[pos].capabilities == b.cells[pos].capabilities


def test_fabric_neighbors_interior_and_corner():
    fabric = Fabric(FabricConfig(rows=3, cols=3))
    assert len(fabric.neighbors((1, 1))) == 4
    assert len(fabric.neighbors((0, 0))) == 2


def test_manhattan():
    assert Fabric.manhattan((0, 0), (2, 3)) == 5


def test_resource_mii_computation():
    fabric = Fabric(FabricConfig(rows=2, cols=2, mul_ratio=0.25,
                                 mem_ratio=0.25))
    # 1 MUL cell; 3 MUL ops -> MII 3.
    assert fabric.resource_mii({FuClass.MUL: 3}) == 3
    assert fabric.resource_mii({FuClass.ALU: 4}) == 1


def test_resource_mii_missing_capability():
    fabric = Fabric(FabricConfig(rows=2, cols=2, mul_ratio=0.0))
    with pytest.raises(FabricCapacityError):
        fabric.resource_mii({FuClass.MUL: 1})


# ------------------------------------------------------------------ Mapper

def default_mapper(**kwargs):
    return Mapper(FabricConfig(), **kwargs)


def test_map_dot_product_achieves_ii_one():
    mapping = default_mapper().map(dot_product_dfg())
    assert mapping.ii == 1
    assert mapping.depth >= 1
    assert mapping.recurrence_mii == pytest.approx(1.0, abs=1e-6)


def test_map_places_all_fu_nodes():
    dfg = stencil5_dfg()
    mapping = default_mapper().map(dfg)
    placed = set(mapping.placement)
    expected = {n.node_id for n in dfg.nodes.values()
                if n.fu_class is not FuClass.NONE}
    assert placed == expected


def test_map_placement_respects_capabilities():
    dfg = cholesky_update_dfg()
    mapper = default_mapper()
    mapping = mapper.map(dfg)
    for node_id, pos in mapping.placement.items():
        node = dfg.nodes[node_id]
        assert mapper.fabric.cells[pos].supports(node.fu_class), \
            f"{node.name} on incapable cell {pos}"


def test_map_routes_connect_placements():
    dfg = merge_dfg()
    mapping = default_mapper().map(dfg)
    for (src, dst, _idx), path in mapping.routes.items():
        assert path[0] == mapping.placement[src]
        assert path[-1] == mapping.placement[dst]
        # Contiguity: every step is one mesh hop.
        for a, b in zip(path, path[1:]):
            assert Fabric.manhattan(a, b) == 1


def test_map_ii_at_least_lower_bounds():
    dfg = cholesky_update_dfg()
    mapping = default_mapper().map(dfg)
    assert mapping.ii >= mapping.resource_mii
    assert mapping.ii >= mapping.recurrence_mii - 1e-9


def test_map_small_fabric_raises_when_too_many_ops():
    # 1x1 fabric cannot host a 5-node graph under the 1-op/cell/cycle model
    # unless II covers it; our mapper refuses when ops exceed cells.
    mapper = Mapper(FabricConfig(rows=1, cols=1, mul_ratio=1.0,
                                 mem_ratio=1.0))
    with pytest.raises(MappingError):
        mapper.map(dot_product_dfg())


def test_map_missing_capability_raises():
    mapper = Mapper(FabricConfig(rows=3, cols=3, mul_ratio=0.0))
    with pytest.raises(MappingError, match="mul"):
        mapper.map(dot_product_dfg())


def test_map_deterministic_for_seed():
    a = default_mapper(seed=7).map(dot_product_dfg())
    Mapper.clear_cache()
    b = default_mapper(seed=7).map(dot_product_dfg())
    assert a.placement == b.placement
    assert a.ii == b.ii


def test_map_cache_returns_same_object():
    mapper = default_mapper()
    first = mapper.map(dot_product_dfg())
    second = mapper.map(dot_product_dfg())
    assert first is second


def test_map_dense_graph_ii_reflects_contention():
    # Build a graph with many MUL ops on a fabric with few MUL cells.
    dfg = Dfg("mulheavy")
    src = dfg.add(Op.INPUT)
    muls = []
    for _ in range(6):
        m = dfg.add(Op.MUL)
        dfg.connect(src, m)
        muls.append(m)
    join = dfg.add(Op.ADD)
    for m in muls:
        dfg.connect(m, join)
    out = dfg.add(Op.OUTPUT)
    dfg.connect(join, out)
    mapper = Mapper(FabricConfig(rows=3, cols=3, mul_ratio=0.25,
                                 mem_ratio=0.5))
    mapping = mapper.map(dfg)
    # 2 MUL-capable cells for 6 MULs -> resource MII 3.
    assert mapping.resource_mii == 3
    assert mapping.ii >= 3


def test_throughput_is_inverse_ii():
    mapping = default_mapper().map(dot_product_dfg())
    assert mapping.throughput_elements_per_cycle() == pytest.approx(
        1.0 / mapping.ii)


def test_total_route_hops_nonnegative():
    mapping = default_mapper().map(stencil5_dfg())
    assert mapping.total_route_hops >= 0
