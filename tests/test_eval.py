"""Tests for the evaluation harness (repro.eval)."""

import pytest

from repro.arch.config import default_delta_config
from repro.eval import bar_chart, compare, format_table, series_table
from repro.eval.experiments import (
    f1_headline_speedup,
    f2_ablation,
    f4_load_balance,
    f5_traffic,
    t1_machine_config,
    t2_workload_table,
    t3_area,
)
from repro.eval.runner import run_suite, suite_geomean
from repro.workloads.synthetic import SkewedTasks, SharedReadTasks


FAST_WORKLOADS = [SkewedTasks(num_tasks=24), SharedReadTasks(num_tasks=12)]


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # Layout: title, header, dashes, then the data rows.
        assert "alpha" in lines[3]
        # Numeric column right-aligned.
        assert lines[3].endswith("1")
        assert lines[4].endswith("22")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_bar_chart_scales_to_peak(self):
        text = bar_chart(["a", "b"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])
        assert bar_chart([], []) == "(empty chart)"

    def test_series_table_shape(self):
        text = series_table("x", [1, 2], {"y": [0.5, 1.5]}, title="S")
        assert "1.50" in text

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            series_table("x", [1], {"y": [1.0, 2.0]})


class TestRunner:
    def test_compare_verifies_and_reports(self):
        c = compare(FAST_WORKLOADS[0], default_delta_config(lanes=4))
        assert c.speedup > 0
        assert c.delta.machine == "delta"
        assert c.static.machine == "static"
        assert len(c.row()) == 6

    def test_run_suite_on_custom_workloads(self):
        comparisons = run_suite(lanes=4, workloads=FAST_WORKLOADS)
        assert [c.workload for c in comparisons] == \
            [w.name for w in FAST_WORKLOADS]
        assert suite_geomean(comparisons) > 0

    def test_traffic_ratio(self):
        c = compare(FAST_WORKLOADS[1], default_delta_config(lanes=4))
        assert c.traffic_ratio > 1.0  # shared reads multicast


class TestExperiments:
    def test_t1_includes_all_parameters(self):
        result = t1_machine_config()
        assert result.experiment_id == "T1"
        assert "dispatch policy" in dict(result.data)

    def test_t2_on_custom_workloads(self):
        result = t2_workload_table(FAST_WORKLOADS)
        assert len(result.data) == 2

    def test_f1_on_custom_workloads(self):
        result = f1_headline_speedup(lanes=4, workloads=FAST_WORKLOADS)
        assert len(result.data) == 2
        assert "GEOMEAN" in result.text

    def test_f2_on_custom_workloads(self):
        result = f2_ablation(lanes=4, workloads=[FAST_WORKLOADS[1]])
        per_step = result.data["per_step"]
        assert len(per_step) == 4
        # Multicast must matter for the shared-read microbenchmark.
        assert per_step["+lb+pipe+mcast"][0] > per_step["+lb+pipe"][0]

    def test_f4_on_custom_workloads(self):
        result = f4_load_balance(lanes=4, workloads=[FAST_WORKLOADS[0]])
        c = result.data[0]
        assert c.delta.imbalance_cv <= c.static.imbalance_cv

    def test_f5_on_custom_workloads(self):
        result = f5_traffic(lanes=4, workloads=[FAST_WORKLOADS[1]])
        assert result.data[0].traffic_ratio > 1.0

    def test_t3_area_band(self):
        result = t3_area()
        assert 0 < result.data.overhead_fraction < 0.10
        assert "TaskStream" in result.text
