"""Tests for the extended-suite workloads (spgemm, pagerank)."""

import numpy as np
import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.program import expand_program
from repro.workloads import get_workload
from repro.workloads.pagerank import PagerankWorkload
from repro.workloads.spgemm import SpgemmWorkload

SMALL = [
    SpgemmWorkload(size=32, rows_per_task=4, max_nnz=8),
    PagerankWorkload(num_vertices=64, iterations=3, chunk_vertices=8),
]


@pytest.mark.parametrize("workload", SMALL, ids=lambda w: w.name)
def test_delta_functional(workload):
    result = Delta(default_delta_config(lanes=4)).run(
        workload.build_program())
    workload.check(result.state)


@pytest.mark.parametrize("workload", SMALL, ids=lambda w: w.name)
def test_static_functional(workload):
    result = StaticParallel(default_baseline_config(lanes=4)).run(
        workload.build_program())
    workload.check(result.state)


def test_registered_as_extended():
    assert get_workload("ext-spgemm").name == "spgemm"
    assert get_workload("ext-pagerank").name == "pagerank"


def test_ext_not_in_core_suite():
    from repro.workloads import all_workloads

    names = {w.name for w in all_workloads()}
    assert "spgemm" not in names
    assert "pagerank" not in names
    assert len(names) == 10


class TestSpgemm:
    def test_reference_matches_dense_product(self):
        w = SpgemmWorkload(size=16, max_nnz=4)
        ref = w.reference()
        assert ref.shape == (16, 16)
        assert np.array_equal(ref, w.a.to_dense() @ w.b.to_dense())

    def test_work_skew_present(self):
        # Row-block aggregation smooths the raw per-row skew; the block-
        # level CV is still well above a uniform workload's ~0.
        w = SpgemmWorkload()
        d = w.describe()
        assert d["cv_work"] > 0.3

    def test_deterministic_inputs(self):
        a = SpgemmWorkload(size=24, seed=3)
        b = SpgemmWorkload(size=24, seed=3)
        assert np.array_equal(a.a.col_idx, b.a.col_idx)
        assert np.array_equal(a.b.values, b.b.values)


class TestPagerank:
    def test_reference_is_probability_vector(self):
        w = PagerankWorkload(num_vertices=64, iterations=3)
        ranks = w.reference()
        assert ranks.shape == (64,)
        assert (ranks > 0).all()
        # Undirected connected graph: damped ranks stay near a
        # distribution (sum ~ 1 up to dangling-free normalization).
        assert ranks.sum() == pytest.approx(1.0, abs=0.05)

    def test_iteration_count_controls_tasks(self):
        w2 = PagerankWorkload(num_vertices=64, iterations=2,
                              chunk_vertices=16)
        w4 = PagerankWorkload(num_vertices=64, iterations=4,
                              chunk_vertices=16)
        t2 = expand_program(w2.build_program()).task_count
        t4 = expand_program(w4.build_program()).task_count
        assert t4 > t2

    def test_fresh_rank_region_per_iteration(self):
        """Each iteration multicasts a new ranks region (no stale reuse)."""
        w = PagerankWorkload(num_vertices=64, iterations=3,
                             chunk_vertices=16)
        result = Delta(default_delta_config(lanes=4)).run(
            w.build_program())
        w.check(result.state)
        # One fetch per iteration for ranks + one for the graph; hits for
        # reuse within an iteration and of the graph across iterations.
        assert result.counters.get("mcast.fetches") >= 3
