"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        return env.now

    p = env.process(proc())
    env.run()
    assert env.now == 5
    assert p.value == 5


def test_zero_delay_timeout_runs_same_cycle():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(3, "c"))
    env.process(waiter(1, "a"))
    env.process(waiter(2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_fifo_tiebreak_for_simultaneous_events():
    env = Environment()
    order = []

    def waiter(tag):
        yield env.timeout(7)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(waiter(tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_waits_on_event_value():
    env = Environment()
    gate = env.event()
    results = []

    def waiter():
        value = yield gate
        results.append(value)

    def opener():
        yield env.timeout(4)
        gate.succeed("opened")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert results == ["opened"]
    assert env.now == 4


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_inside_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_completion_is_waitable():
    env = Environment()

    def child():
        yield env.timeout(10)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    p = env.process(parent())
    env.run()
    assert p.value == 43
    assert env.now == 10


def test_process_exception_propagates_in_strict_mode():
    env = Environment(strict=True)

    def bad():
        yield env.timeout(1)
        raise ValueError("modeling bug")

    env.process(bad())
    with pytest.raises(ValueError, match="modeling bug"):
        env.run()


def test_process_exception_fails_event_in_lenient_mode():
    env = Environment(strict=False)

    def bad():
        yield env.timeout(1)
        raise ValueError("contained")

    p = env.process(bad())
    env.run()
    assert p.ok is False
    assert isinstance(p.value, ValueError)


def test_yielding_non_event_is_error():
    env = Environment(strict=True)

    def bad():
        yield 5  # type: ignore[misc]

    env.process(bad())
    with pytest.raises(SimulationError, match="must.*yield Event"):
        env.run()


def test_run_until_pauses_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=30)
    assert env.now == 30
    env.run()
    assert env.now == 100


def test_all_of_collects_values_in_order():
    env = Environment()

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(3, "a")), env.process(child(1, "b"))]
        values = yield env.all_of(procs)
        return values

    p = env.process(parent())
    env.run()
    assert p.value == ["a", "b"]
    assert env.now == 3


def test_all_of_empty_fires_immediately():
    env = Environment()

    def parent():
        values = yield env.all_of([])
        return values

    p = env.process(parent())
    env.run()
    assert p.value == []


def test_any_of_fires_on_first():
    env = Environment()

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        value = yield env.any_of(
            [env.process(child(9, "slow")), env.process(child(2, "fast"))])
        return value

    p = env.process(parent())
    env.run()
    assert p.value == "fast"


def test_any_of_empty_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, env.now))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("reconfigure")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", "reconfigure", 5)]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_stale_wakeup_after_interrupt_is_ignored():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(10)
            log.append("timeout fired")
        except Interrupt:
            yield env.timeout(100)
            log.append(("resumed", env.now))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    # The original timeout at t=10 must not resume the process early.
    assert log == [("resumed", 105)]


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(17)

    env.process(proc())
    assert env.peek() == 0  # process bootstrap event
    env.run()
    assert env.peek() == float("inf")


def test_event_cross_environment_rejected():
    env_a = Environment()
    env_b = Environment()
    foreign = env_b.timeout(1)

    def proc():
        yield foreign

    env_a.process(proc())
    with pytest.raises(SimulationError, match="another Environment"):
        env_a.run()


def test_callback_after_processed_still_runs():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    env.run()
    assert seen == ["v"]


# ---------------------------------------------------------------------------
# Seeded randomized kernel tests: the DES kernel's ordering and aggregate
# semantics must hold for arbitrary schedules, not just the hand-written
# cases above. All randomness flows through DeterministicRng, so a failure
# reproduces exactly from the seed in the parametrize list.

from repro.util.rng import DeterministicRng  # noqa: E402


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_schedule_preserves_time_then_seq_order(seed):
    """Events fire in (time, seq) order: by time, FIFO within a cycle."""
    rng = DeterministicRng("sim-engine-schedule", seed)
    env = Environment()
    fired = []
    delays = [rng.randint(0, 25) for _ in range(300)]

    def waiter(index, delay):
        yield env.timeout(delay)
        fired.append((env.now, index))

    for index, delay in enumerate(delays):
        env.process(waiter(index, delay))
    env.run()

    assert len(fired) == len(delays)
    # Non-decreasing time, and each event fired at its own delay.
    assert [t for t, _i in fired] == sorted(t for t, _i in fired)
    assert all(t == delays[i] for t, i in fired)
    # FIFO tie-break: processes sharing a fire time keep creation order.
    for tick in set(delays):
        indices = [i for t, i in fired if t == tick]
        assert indices == sorted(indices)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_all_of_tree_collects_in_input_order(seed):
    """all_of over a random fan-in returns values in input order at the
    max child time, regardless of completion order."""
    rng = DeterministicRng("sim-engine-all-of", seed)
    env = Environment()
    delays = [rng.randint(0, 40) for _ in range(rng.randint(1, 20))]

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(d, f"v{i}"))
                 for i, d in enumerate(delays)]
        values = yield env.all_of(procs)
        return values

    p = env.process(parent())
    env.run()
    assert p.value == [f"v{i}" for i in range(len(delays))]
    assert env.now == max(delays)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_any_of_fires_on_earliest_child(seed):
    """any_of resolves with the earliest child's value at its time."""
    rng = DeterministicRng("sim-engine-any-of", seed)
    env = Environment()
    # Distinct delays so "earliest" is unambiguous.
    delays = rng.sample(range(1, 60), rng.randint(2, 12))

    def child(delay):
        yield env.timeout(delay)
        return delay

    def parent():
        value = yield env.any_of([env.process(child(d)) for d in delays])
        return value

    p = env.process(parent())
    env.run()
    assert p.value == min(delays)


def test_all_of_with_already_fired_children():
    env = Environment()
    pre_a = env.event()
    pre_a.succeed("early-a")
    pre_b = env.event()
    pre_b.succeed("early-b")
    env.run()  # both children processed before the aggregate exists
    assert pre_a.processed and pre_b.processed

    def parent():
        values = yield env.all_of([pre_a, pre_b])
        return values

    p = env.process(parent())
    env.run()
    assert p.value == ["early-a", "early-b"]


def test_any_of_with_already_fired_child_wins_immediately():
    env = Environment()
    done = env.event()
    done.succeed("already")
    env.run()

    def parent():
        value = yield env.any_of([done, env.timeout(50)])
        return value

    p = env.process(parent())
    env.run()
    assert p.value == "already"


def test_all_of_with_failed_child_fails_aggregate():
    env = Environment(strict=False)
    good = env.timeout(1, value="fine")
    bad = env.event()
    bad.fail(RuntimeError("child failed"))
    caught = []

    def parent():
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["child failed"]


def test_any_of_with_failed_first_child_fails_aggregate():
    env = Environment(strict=False)
    bad = env.event()
    bad.fail(RuntimeError("first failure wins"))
    caught = []

    def parent():
        try:
            yield env.any_of([bad, env.timeout(5)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["first failure wins"]


def test_run_until_does_not_pop_the_next_event():
    """Stopping at `until` leaves the future event queued, not consumed."""
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(50)
        fired.append(env.now)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10
    assert fired == []
    assert env.peek() == 50  # still on the heap, untouched
    env.run(until=49)
    assert fired == []
    env.run()
    assert fired == [50]
    assert env.now == 50
