"""The shared store layer: sharding, locking, eviction, coalescing, metrics.

The contract under test (see docs/storage.md):

- entries publish atomically into digest-prefix shards; readers see an
  old or a complete new entry, never a torn one;
- a truncated / garbage / tampered entry is logged, counted
  (``cache.corrupt``), deleted, and recomputed — never raised and never
  served;
- the size cap holds: after eviction runs the store is within budget,
  and the least-recently-used entries go first;
- identical in-flight computations coalesce (one compute per key per
  process, and per host via the shard lock);
- N concurrent processes hammering one store corrupt nothing and lose
  no published writes;
- the parallel evaluation path stays field-identical to the serial path
  with coalescing and eviction in play.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import random
import threading
import time
from pathlib import Path

import pytest

from repro.machine.metrics import MetricsBus
from repro.store import (
    Coalescer,
    ShardLock,
    ShardedStore,
    StoreMetrics,
    cache_budget_bytes,
    open_store,
)
from repro.workloads.synthetic import SharedReadTasks, SkewedTasks

KEY_A = hashlib.sha256(b"a").hexdigest()
KEY_B = hashlib.sha256(b"b").hexdigest()
KEY_C = hashlib.sha256(b"c").hexdigest()


# ------------------------------------------------------------ basic store

class TestShardedStore:
    def test_roundtrip_and_layout(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"payload")
        assert store.read("eval", KEY_A) == b"payload"
        # Sharded by digest prefix: <root>/<namespace>/<k[:2]>/<k>.pkl.
        path = store.path_for("eval", KEY_A)
        assert path == tmp_path / "eval" / KEY_A[:2] / f"{KEY_A}.pkl"
        assert path.exists()

    def test_miss_returns_none(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        assert store.read("eval", KEY_A) is None

    def test_namespaces_are_disjoint(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"comparison")
        store.write("structure", KEY_A, b"summary")
        assert store.read("eval", KEY_A) == b"comparison"
        assert store.read("structure", KEY_A) == b"summary"
        assert store.entry_count("eval") == 1
        assert store.entry_count("structure") == 1
        assert store.clear("eval") == 1
        assert store.read("eval", KEY_A) is None
        assert store.read("structure", KEY_A) == b"summary"

    def test_delete_and_counts(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"x" * 100)
        store.write("eval", KEY_B, b"y" * 50)
        assert store.entry_count() == 2
        assert store.total_bytes() == 150
        assert sorted(store.keys("eval")) == sorted([KEY_A, KEY_B])
        assert store.delete("eval", KEY_A) is True
        assert store.delete("eval", KEY_A) is False
        assert store.entry_count() == 1

    def test_clear_report_spans_namespaces(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"x")
        store.write("eval", KEY_B, b"y")
        store.write("structure", KEY_C, b"z")
        assert store.clear_report() == {"eval": 2, "structure": 1}
        assert store.entry_count() == 0

    def test_clear_sweeps_legacy_flat_entries(self, tmp_path):
        # Pre-store caches kept entries flat at the root; one clear-all
        # leaves nothing stale behind.
        (tmp_path / f"{KEY_A}.pkl").write_bytes(b"legacy")
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_B, b"new")
        assert store.clear() == 2
        assert not (tmp_path / f"{KEY_A}.pkl").exists()

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        for key in (KEY_A, KEY_B, KEY_C):
            store.write("eval", key, b"payload" * 100)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []

    def test_open_store_defaults_to_shared_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        store = open_store()
        assert store.root == tmp_path / "shared"
        explicit = open_store(tmp_path / "explicit", max_mb=1)
        assert explicit.root == tmp_path / "explicit"
        assert explicit.max_bytes == 1024 * 1024


# ------------------------------------------------------- corrupt entries

def _truncate_mid_file(path: Path) -> None:
    """Chop an entry roughly in half — a torn copy or a full disk."""
    data = path.read_bytes()
    assert len(data) > 2
    path.write_bytes(data[:len(data) // 2])


class TestCorruptEntries:
    """A bad entry must log, count ``cache.corrupt``, be deleted, and be
    recomputed — never raise and never be served."""

    def _cached_comparison(self, tmp_path):
        from repro.eval.cache import EvalCache
        from repro.eval.parallel import run_suite_parallel

        cache = EvalCache(store=ShardedStore(tmp_path, max_bytes=None))
        workload = SkewedTasks(num_tasks=24)
        (cold,) = run_suite_parallel(lanes=4, workloads=[workload],
                                     jobs=1, cache=cache)
        key = cache.key_for(*_point(workload))
        return cache, workload, key, cold

    def test_truncated_entry_recomputed_not_raised(self, tmp_path, caplog):
        from repro.eval.parallel import run_suite_parallel
        from repro.util.fingerprint import result_stats

        cache, workload, key, cold = self._cached_comparison(tmp_path)
        path = cache._path(key)
        _truncate_mid_file(path)
        with caplog.at_level("WARNING", logger="repro.store"):
            assert cache.get(key) is None  # dropped, not raised
        assert "corrupt" in caplog.text
        assert not path.exists(), "corrupt entry must be deleted"
        assert cache.store.metrics.get("corrupt") == 1
        # The sweep recomputes the point and repopulates the entry.
        (again,) = run_suite_parallel(lanes=4,
                                      workloads=[SkewedTasks(num_tasks=24)],
                                      jobs=1, cache=cache)
        assert result_stats(again.delta) == result_stats(cold.delta)
        assert path.exists()

    def test_garbage_bytes_counted_and_dropped(self, tmp_path):
        cache, _workload, key, _cold = self._cached_comparison(tmp_path)
        cache._path(key).write_bytes(b"\x00\xff garbage, not a pickle")
        misses_before = cache.misses
        assert cache.get(key) is None
        assert cache.store.metrics.get("corrupt") == 1
        assert cache.misses == misses_before + 1, "corruption counts a miss"

    def test_structure_truncation_recomputed(self, tmp_path, caplog):
        from repro.graph.cache import StructureCache, structure_summary
        from repro.workloads import get_workload

        cache = StructureCache(store=ShardedStore(tmp_path, max_bytes=None))
        workload = get_workload("micro-uniform")
        first = structure_summary(workload, cache=cache)
        (entry,) = tmp_path.rglob("*.pkl")
        _truncate_mid_file(entry)
        with caplog.at_level("WARNING", logger="repro.store"):
            second = structure_summary(workload, cache=cache)
        assert second == first
        assert cache.store.metrics.get("corrupt") == 1
        assert "corrupt" in caplog.text


def _point(workload):
    from repro.arch.config import default_baseline_config, default_delta_config

    return (workload, default_delta_config(lanes=4),
            default_baseline_config(lanes=4))


# ------------------------------------------------------------- eviction

class TestEviction:
    def test_budget_enforced_after_writes(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=250)
        for key in (KEY_A, KEY_B, KEY_C):
            store.write("eval", key, bytes(100))
        assert store.total_bytes() <= 250
        assert store.metrics.get("evictions") >= 1
        assert store.metrics.get("evicted_bytes") >= 100

    def test_least_recently_used_goes_first(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, bytes(100))
        store.write("eval", KEY_B, bytes(100))
        # Age A far into the past; B stays fresh.
        old = time.time() - 3600
        os.utime(store.path_for("eval", KEY_A), (old, old))
        store.max_bytes = 150
        assert store.evict_to_budget() == 1
        assert store.read("eval", KEY_A) is None
        assert store.read("eval", KEY_B) is not None

    def test_read_refreshes_recency(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, bytes(100))
        store.write("eval", KEY_B, bytes(100))
        old = time.time() - 3600
        for key in (KEY_A, KEY_B):
            os.utime(store.path_for("eval", key), (old, old))
        # Touching A through a read makes B the eviction victim.
        assert store.read("eval", KEY_A) is not None
        store.max_bytes = 150
        store.evict_to_budget()
        assert store.read("eval", KEY_A) is not None
        assert store.path_for("eval", KEY_B).exists() is False

    def test_eviction_spans_namespaces(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=150)
        store.write("structure", KEY_A, bytes(100))
        old = time.time() - 3600
        os.utime(store.path_for("structure", KEY_A), (old, old))
        store.write("eval", KEY_B, bytes(100))
        # The older structure entry was evicted to fit the eval entry.
        assert store.total_bytes() <= 150
        assert store.read("structure", KEY_A) is None
        assert store.read("eval", KEY_B) is not None

    def test_uncapped_store_never_evicts(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        for key in (KEY_A, KEY_B, KEY_C):
            store.write("eval", key, bytes(10_000))
        assert store.evict_to_budget() == 0
        assert store.entry_count() == 3

    def test_budget_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache_budget_bytes() is None
        assert cache_budget_bytes(2) == 2 * 1024 * 1024
        assert cache_budget_bytes(0) is None  # explicit 0 = uncapped
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.5")
        assert cache_budget_bytes() == int(1.5 * 1024 * 1024)
        assert cache_budget_bytes(3) == 3 * 1024 * 1024  # flag wins
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "not-a-number")
        assert cache_budget_bytes() is None

    def test_eval_cache_respects_env_budget(self, tmp_path, monkeypatch):
        from repro.eval.cache import EvalCache

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.0001")  # ~105 bytes
        cache = EvalCache(tmp_path)
        assert cache.store.max_bytes == 104
        cache.store.write("eval", KEY_A, bytes(400))
        assert cache.store.total_bytes() <= 104


# ------------------------------------------ protected namespaces and TTL GC

class TestProtectedNamespaces:
    """Live job records are never collateral of cache housekeeping."""

    def test_clear_everything_spares_job_records(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"cache")
        store.write("jobs", KEY_B, b"job record")
        assert store.clear() == 1
        assert store.read("eval", KEY_A) is None
        assert store.read("jobs", KEY_B) == b"job record"
        # Naming the protected namespace explicitly still clears it —
        # lifecycle owners may, --clear-cache may not.
        assert store.clear("jobs") == 1
        assert store.read("jobs", KEY_B) is None

    def test_clear_report_excludes_job_records(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("eval", KEY_A, b"cache")
        store.write("jobs", KEY_B, b"job record")
        assert store.clear_report() == {"eval": 1}
        assert store.read("jobs", KEY_B) == b"job record"

    def test_size_cap_never_evicts_job_records(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        store.write("jobs", KEY_A, bytes(100))
        store.write("eval", KEY_B, bytes(100))
        # Make the job record the obvious LRU victim — and still exempt:
        # it is neither a candidate nor counted toward the budget, so the
        # only way back under the 50-byte cap is shedding the eval entry.
        old = time.time() - 3600
        os.utime(store.path_for("jobs", KEY_A), (old, old))
        store.max_bytes = 50
        assert store.evict_to_budget() == 1
        assert store.read("jobs", KEY_A) is not None
        assert store.read("eval", KEY_B) is None

    def test_sweep_aged_deletes_old_spares_young_and_exempt(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        for key in (KEY_A, KEY_B, KEY_C):
            store.write("jobs", key, b"record")
        old = time.time() - 3600
        for key in (KEY_A, KEY_B):
            os.utime(store.path_for("jobs", key), (old, old))
        removed = store.sweep_aged(600, namespace="jobs", exempt={KEY_B})
        assert removed == 1
        assert store.read("jobs", KEY_A) is None       # old: swept
        assert store.read("jobs", KEY_B) == b"record"  # old but exempt
        assert store.read("jobs", KEY_C) == b"record"  # young


# ------------------------------------------------------------ shard locks

class TestShardLock:
    def test_uncontended_acquire_counts_no_wait(self, tmp_path):
        metrics = StoreMetrics()
        with ShardLock(tmp_path / "ab", metrics) as lock:
            assert lock.contended is False
        assert metrics.get("lock_waits") == 0

    def test_contended_acquire_blocks_and_counts(self, tmp_path):
        metrics = StoreMetrics()
        holder = ShardLock(tmp_path / "ab", metrics)
        holder.acquire()
        acquired = threading.Event()

        def contender():
            with ShardLock(tmp_path / "ab", metrics) as lock:
                assert lock.contended is True
                acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set(), "contender must block while held"
        holder.release()
        thread.join(timeout=5)
        assert acquired.is_set()
        assert metrics.get("lock_waits") == 1

    def test_lock_file_lives_in_shard_dir(self, tmp_path):
        with ShardLock(tmp_path / "cd") as lock:
            assert lock.path == tmp_path / "cd" / ".lock"
            assert lock.path.exists()


# ------------------------------------------------------------- coalescing

class TestCoalescer:
    def test_concurrent_callers_compute_once(self):
        metrics = StoreMetrics()
        coalescer = Coalescer(metrics)
        computes = []
        gate = threading.Event()

        def compute():
            gate.wait(5)
            computes.append(1)
            return "value"

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(coalescer.run("k", compute)))
            for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let every follower reach the in-flight future
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert results == ["value"] * 4
        assert len(computes) == 1, "identical in-flight keys compute once"
        assert metrics.get("coalesced") == 3
        assert coalescer.inflight() == 0

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = Coalescer()
        assert coalescer.run("a", lambda: 1) == 1
        assert coalescer.run("b", lambda: 2) == 2
        assert coalescer.inflight() == 0

    def test_leader_exception_propagates_to_followers(self):
        coalescer = Coalescer()
        gate = threading.Event()
        failures = []

        def compute():
            gate.wait(5)
            raise RuntimeError("boom")

        def follower():
            try:
                coalescer.run("k", compute)
            except RuntimeError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=follower) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert failures == ["boom"] * 3
        # A failed key leaves the map — the next caller retries fresh.
        assert coalescer.run("k", lambda: "recovered") == "recovered"

    def test_sequential_calls_recompute(self):
        # Coalescing is for *in-flight* work only; completed results are
        # the cache's job.
        coalescer = Coalescer()
        counter = []
        for _ in range(2):
            coalescer.run("k", lambda: counter.append(1))
        assert len(counter) == 2


def _count_compute(root: str, key: str, marker_name: str) -> None:
    """get_or_compute worker: append one line to the marker per compute."""
    store = ShardedStore(Path(root), max_bytes=None)
    marker = Path(root) / marker_name

    def compute() -> bytes:
        with open(marker, "a") as handle:
            handle.write("computed\n")
        time.sleep(0.05)  # widen the window concurrent callers race into
        return b"expensive payload"

    payload = store.get_or_compute("eval", key, compute)
    assert payload == b"expensive payload"


class TestGetOrCompute:
    def test_computes_once_then_serves(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=None)
        computes = []

        def compute() -> bytes:
            computes.append(1)
            return b"payload"

        assert store.get_or_compute("eval", KEY_A, compute) == b"payload"
        assert store.get_or_compute("eval", KEY_A, compute) == b"payload"
        assert len(computes) == 1

    def test_cross_process_double_compute_suppressed(self, tmp_path):
        """N processes race get_or_compute on one key: the shard lock
        elects one computer; everyone else reads the published entry."""
        marker = "computes.txt"
        procs = [multiprocessing.Process(
            target=_count_compute, args=(str(tmp_path), KEY_A, marker))
            for _ in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        computed = (tmp_path / marker).read_text().splitlines()
        assert len(computed) == 1, \
            f"expected exactly one compute across the pool, got {computed}"


# ----------------------------------------------------- metrics plumbing

class TestCacheMetrics:
    def test_store_reports_through_a_metrics_bus(self, tmp_path):
        from repro.eval.cache import EvalCache
        from repro.eval.parallel import run_suite_parallel

        bus = MetricsBus()
        cache = EvalCache(
            store=ShardedStore(tmp_path, max_bytes=None, metrics=bus.cache))
        workloads = [SkewedTasks(num_tasks=24)]
        run_suite_parallel(lanes=4, workloads=list(workloads), jobs=1,
                           cache=cache)
        assert bus.cache.misses == 1
        assert bus.cache.stores == 1
        run_suite_parallel(lanes=4, workloads=list(workloads), jobs=1,
                           cache=cache)
        assert bus.cache.hits == 1
        assert bus.cache.hit_rate() == 0.5
        # The dotted names land in the ordinary counter store.
        assert bus.get("cache.hits") == 1

    def test_cache_group_is_declared(self):
        bus = MetricsBus()
        declared = bus.cache.declared()
        for name in ("hits", "misses", "stores", "evictions",
                     "coalesced", "corrupt", "lock_waits"):
            assert name in declared


# ----------------------------------------------- multiprocessing stress

#: Shared key set every stress worker draws from — small enough that
#: workers collide on keys constantly (the interesting regime).
STRESS_KEYS = [hashlib.sha256(f"stress-{i}".encode()).hexdigest()
               for i in range(8)]


def _stress_payload(key: str, round_no: int) -> bytes:
    blob = (key + str(round_no)).encode() * 200
    digest = hashlib.sha256(blob).hexdigest()
    return pickle.dumps({"key": key, "digest": digest, "blob": blob})


def _verify_stress_payload(key: str, payload: bytes) -> None:
    entry = pickle.loads(payload)  # raises on truncation/corruption
    assert entry["key"] == key, "payload served under the wrong key"
    assert hashlib.sha256(entry["blob"]).hexdigest() == entry["digest"], \
        "payload bytes corrupted"


def _stress_worker(root: str, worker_id: int, iterations: int,
                   budget: int, errors) -> None:
    """Mixed read/write/evict/clear traffic over one shared store."""
    store = ShardedStore(Path(root), max_bytes=budget)
    rng = random.Random(worker_id)
    try:
        for i in range(iterations):
            key = rng.choice(STRESS_KEYS)
            roll = rng.random()
            if roll < 0.45:
                store.write("stress", key, _stress_payload(key, i))
            elif roll < 0.90:
                payload = store.read("stress", key)
                if payload is not None:
                    _verify_stress_payload(key, payload)
            elif roll < 0.95:
                store.evict_to_budget()
            else:
                store.delete("stress", key)
    except Exception as exc:  # pragma: no cover - only on regression
        errors.put(f"worker {worker_id}: {type(exc).__name__}: {exc}")


class TestConcurrencyStress:
    def test_workers_hammering_one_store_corrupt_nothing(self, tmp_path):
        """N workers × one key set, mixed read/write/evict/delete: every
        read observes a complete, self-consistent payload; the budget
        holds once the dust settles; no worker ever raises."""
        budget = 64 * 1024
        errors = multiprocessing.Queue()
        procs = [multiprocessing.Process(
            target=_stress_worker,
            args=(str(tmp_path), wid, 120, budget, errors))
            for wid in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert failures == [], failures
        assert all(p.exitcode == 0 for p in procs)
        # Post-mortem: every surviving entry is complete and consistent.
        store = ShardedStore(tmp_path, max_bytes=budget)
        survivors = 0
        for key in store.keys("stress"):
            payload = store.read("stress", key)
            if payload is not None:
                _verify_stress_payload(key, payload)
                survivors += 1
        assert store.evict_to_budget() == 0, "store already within budget"
        assert store.total_bytes() <= budget
        # No temp-file debris from any writer.
        assert [p for p in tmp_path.rglob("*") if ".tmp." in p.name] == []

    def test_parallel_equals_serial_with_coalescing_and_eviction(
            self, tmp_path):
        """The whole stack at once: duplicated points, a cache under a
        budget tight enough to evict, multiple workers — the results must
        stay field-identical to the plain serial path."""
        from repro.eval.cache import EvalCache
        from repro.eval.parallel import run_suite_parallel
        from repro.eval.runner import run_suite
        from repro.util.fingerprint import comparison_fingerprint

        def point_workloads():
            return [SkewedTasks(num_tasks=24),
                    SkewedTasks(num_tasks=24),        # duplicate: coalesces
                    SharedReadTasks(num_tasks=12)]

        serial = run_suite(lanes=4, workloads=point_workloads(), jobs=1)
        bus = MetricsBus()
        cache = EvalCache(store=ShardedStore(tmp_path, max_bytes=1,
                                             metrics=bus.cache))
        outcomes: list = []
        parallel = run_suite_parallel(lanes=4, workloads=point_workloads(),
                                      jobs=2, cache=cache, outcomes=outcomes)
        assert [comparison_fingerprint(c) for c in serial] == \
            [comparison_fingerprint(c) for c in parallel]
        assert outcomes[1] == "coalesced"
        assert bus.cache.coalesced == 1
        # Exactly one computation per distinct key reached the pool.
        assert cache.stores == 2
        assert bus.cache.evictions >= 1, "a 1-byte budget must evict"

    def test_coalesced_points_compute_once_without_a_cache(self):
        from repro.eval.parallel import run_suite_parallel
        from repro.util.fingerprint import comparison_fingerprint

        workloads = [SkewedTasks(num_tasks=24), SkewedTasks(num_tasks=24)]
        outcomes: list = []
        results = run_suite_parallel(lanes=4, workloads=workloads, jobs=1,
                                     outcomes=outcomes)
        assert comparison_fingerprint(results[0]) == \
            comparison_fingerprint(results[1])
        assert outcomes == ["ok", "coalesced"]


# ------------------------------------------------------ unified clearing

class TestUnifiedClear:
    def test_one_store_clears_both_caches(self, tmp_path):
        from repro.eval.cache import EvalCache
        from repro.eval.parallel import run_suite_parallel
        from repro.graph.cache import StructureCache, structure_summary
        from repro.workloads import get_workload

        store = ShardedStore(tmp_path, max_bytes=None)
        cache = EvalCache(store=store)
        structure_cache = StructureCache(store=store)
        run_suite_parallel(lanes=4, workloads=[SkewedTasks(num_tasks=24)],
                           jobs=1, cache=cache)
        structure_summary(get_workload("micro-uniform"),
                          cache=structure_cache)
        assert len(cache) == 1 and len(structure_cache) == 1
        report = store.clear_report()
        assert report == {"eval": 1, "structure": 1}
        assert len(cache) == 0 and len(structure_cache) == 0

    def test_cli_clear_cache_clears_both_namespaces(self, tmp_path,
                                                    capsys, monkeypatch):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Seed both namespaces through the real eval path.
        assert cli.main(["eval", "--jobs", "1",
                         "--workloads", "micro-chain"]) == 0
        capsys.readouterr()
        assert cli.main(["eval", "--jobs", "1", "--clear-cache",
                         "--no-cache",
                         "--workloads", "micro-chain"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert "eval" in out and "structure" in out
        store = ShardedStore(tmp_path, max_bytes=None)
        assert store.entry_count() == 0


# ----------------------------------------------------------- cli surface

class TestCliStoreFlags:
    def test_eval_reports_store_metrics_line(self, tmp_path, capsys,
                                             monkeypatch):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cli.main(["eval", "--jobs", "1",
                         "--workloads", "micro-chain"]) == 0
        out = capsys.readouterr().out
        assert "store:" in out
        assert "hit rate" in out
        assert "coalesced" in out

    def test_cache_max_mb_flag_caps_the_store(self, tmp_path, capsys,
                                              monkeypatch):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cli.main(["eval", "--jobs", "1", "--cache-max-mb", "0.001",
                         "--workloads", "micro-chain",
                         "micro-shared"]) == 0
        store = ShardedStore(tmp_path, max_bytes=None)
        assert store.total_bytes() <= int(0.001 * 1024 * 1024)
        out = capsys.readouterr().out
        assert "evicted" in out


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
