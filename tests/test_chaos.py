"""Crash-matrix tests: the self-healing contracts under real failures.

What must hold (see docs/chaos.md):

- **worker death**: ``kill -9`` of a process-pool child degrades to a
  ``retried`` / ``lost-worker`` point — the sweep still returns results
  field-identical to the serial path;
- **server death**: SIGKILL of a ``repro serve`` process mid-stream loses
  nothing durable — a restart on the same store replays queued *and*
  interrupted jobs to completion;
- **lease lifecycle**: an expired lease requeues the job with backoff and
  a fresh owner; results from the stale incarnation are discarded as
  zombies; a job past the retry budget fails with the typed
  ``lease-expired`` error;
- **conservation under chaos**: random interleavings of submit / claim /
  clock-jump / lease-expiry / zombie-finish / cancel never unbalance
  ``submitted == queued + running + completed + cancelled + failed +
  rejected`` (Hypothesis property).

The pool-child kill runs in-process (the pool children here are children
of the test process); the server kill drives a real subprocess the way
``tools/chaos_smoke.py`` does, just smaller.
"""

import http.client
import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.metrics import MetricsBus
from repro.serve import JobQueue, JobSpec, QuotaExceeded
from repro.serve.protocol import QueueOverloaded
from repro.serve.queue import (
    CANCELLED,
    COMPLETED,
    FAILED,
    LEASE_EXPIRED,
    QUEUED,
    RUNNING,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# -- kill -9 of a pool child ------------------------------------------------

#: Path of the one-shot kill flag, inherited by fork()ed pool workers.
#: The first worker to pick up a point while the flag exists removes it
#: (atomically claiming the kill) and SIGKILLs itself mid-point.
KILL_FLAG = None


def _compare_point_with_murder(spec):
    """Pool-worker entry that dies hard exactly once, then behaves."""
    if KILL_FLAG is not None and multiprocessing.parent_process() is not None:
        try:
            os.remove(KILL_FLAG)
        except FileNotFoundError:
            pass  # another worker already spent the kill
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    from repro.eval.runner import compare

    workload, delta_config, static_config, verify = spec
    return compare(workload, delta_config, static_config, verify=verify)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the one-shot kill flag rides on fork()ed memory")
def test_killed_pool_child_degrades_to_a_retried_point(tmp_path,
                                                       monkeypatch):
    from repro.eval import parallel as parallel_mod
    from repro.eval.runner import run_suite
    from repro.util.fingerprint import comparison_fingerprint
    from repro.workloads.synthetic import SharedReadTasks, SkewedTasks

    def suite():
        return [SkewedTasks(num_tasks=24), SharedReadTasks(num_tasks=12)]

    flag = tmp_path / "kill-once"
    flag.write_text("armed")
    monkeypatch.setattr(sys.modules[__name__], "KILL_FLAG", str(flag))
    monkeypatch.setattr(parallel_mod, "_compare_point",
                        _compare_point_with_murder)

    serial = run_suite(lanes=4, workloads=suite(), jobs=1)
    bus = MetricsBus()
    outcomes = []
    survived = parallel_mod.run_suite_parallel(
        lanes=4, workloads=suite(), jobs=2, outcomes=outcomes,
        metrics=bus.eval)

    assert not flag.exists(), "no worker picked up the kill flag"
    assert bus.eval.get("worker_deaths") >= 1
    # The murdered point (and any point in flight beside it) must have
    # been re-run, not failed: every outcome is a survivable one.
    assert set(outcomes) <= {"ok", "retried", "lost-worker"}
    assert set(outcomes) & {"retried", "lost-worker"}
    assert [comparison_fingerprint(c) for c in survived] == \
        [comparison_fingerprint(c) for c in serial]


# -- SIGKILL of the server mid-stream ---------------------------------------

def _request(port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    return response.status, (json.loads(data) if data else None)


def _start_server(cache_dir):
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(cache_dir), "--jobs", "2",
         "--max-concurrent-jobs", "1", "--lease-s", "10"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    for _ in range(20):
        line = server.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return server, int(match.group(1))
    server.kill()
    raise AssertionError("server never announced its port")


@pytest.mark.slow
def test_sigkilled_server_replays_jobs_after_restart(tmp_path):
    sweep = {"kind": "sweep", "sanitize": True, "lanes": 8,
             "workloads": ["wavefront", "stencil-amr", "cholesky", "knn",
                           "ext-pagerank", "histogram", "bfs", "mergesort"]}
    server, port = _start_server(tmp_path)
    try:
        jobs = []
        for seed in (0, 1):
            status, body = _request(port, "POST", "/jobs",
                                    dict(sweep, seed=seed))
            assert status == 201, body
            jobs.append(body["job"])
        # Wait until the first job is genuinely mid-flight, then murder
        # the server — SIGKILL, so nothing gets to flush or say goodbye.
        deadline = time.monotonic() + 60
        victim = None
        while time.monotonic() < deadline and victim is None:
            for job_id in jobs:
                if _request(port, "GET", f"/jobs/{job_id}")[1]["state"] \
                        == "running":
                    victim = job_id
                    break
            time.sleep(0.05)
        assert victim is not None, "no job ever started running"
    finally:
        server.kill()
        server.wait(30)

    reborn, port = _start_server(tmp_path)
    try:
        health = _request(port, "GET", "/healthz")[1]
        assert health["queue"]["replayed"] == 2
        assert health["conservation_ok"] is True
        deadline = time.monotonic() + 120
        states = {}
        while time.monotonic() < deadline:
            states = {job_id: _request(port, "GET", f"/jobs/{job_id}")[1]
                      for job_id in jobs}
            if all(body["state"] == "completed"
                   for body in states.values()):
                break
            time.sleep(0.2)
        assert all(body["state"] == "completed"
                   for body in states.values()), states
        # The interrupted job carries its requeue in the event history.
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request("GET", f"/jobs/{victim}/events")
            response = conn.getresponse()
            assert response.status == 200
            events = [json.loads(line)
                      for line in response.read().decode().splitlines()]
        finally:
            conn.close()
        assert any(event["event"] == "requeued" for event in events)
        assert _request(port, "GET", "/healthz")[1]["conservation_ok"] \
            is True
    finally:
        reborn.send_signal(signal.SIGTERM)
        assert reborn.wait(30) == 0


# -- the lease lifecycle on a fake clock ------------------------------------

class FakeClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _spec(tenant=0):
    return JobSpec(kind="sweep", workloads=("micro-chain",),
                   tenant=f"t{tenant}")


class TestLeaseLifecycle:
    def test_expiry_requeues_with_backoff_then_succeeds(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=10, max_lease_attempts=3, clock=clock)
        job = queue.submit(_spec())
        first = queue.claim_next("w1")
        assert first.id == job.id
        stale_owner = first.owner
        assert stale_owner is not None

        # A fresh lease does not expire; a heartbeat keeps it fresh.
        assert queue.expire_leases() == []
        clock.advance(8)
        assert queue.heartbeat(job.id, stale_owner)
        clock.advance(8)
        assert queue.expire_leases() == []  # the heartbeat renewed it

        clock.advance(11)
        affected = queue.expire_leases()
        assert [j.id for j in affected] == [job.id]
        assert job.state == QUEUED
        assert job.attempts == 1
        # The backoff gate holds: not claimable until the clock passes it.
        assert job.next_eligible_at > clock()
        assert queue.claim_next("w2") is None
        clock.advance(16)  # past any jittered backoff
        second = queue.claim_next("w2")
        assert second.id == job.id
        assert second.owner != stale_owner

        # The stale incarnation is a zombie now: its heartbeat fails and
        # its result is discarded without touching the live claim.
        assert not queue.heartbeat(job.id, stale_owner)
        assert queue.finish(job.id, COMPLETED, owner=stale_owner) is None
        assert queue.get(job.id).state == RUNNING
        assert not queue.job_alive(job.id, stale_owner)
        assert queue.job_alive(job.id, second.owner)

        done = queue.finish(job.id, COMPLETED, owner=second.owner)
        assert done is not None and done.state == COMPLETED
        assert queue.conservation_ok(), queue.counts()

    def test_retry_budget_exhaustion_fails_typed(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5, max_lease_attempts=2, clock=clock)
        job = queue.submit(_spec())
        for expected_attempt in (1, 2):
            claimed = queue.claim_next("w")
            assert claimed is not None, f"attempt {expected_attempt}"
            clock.advance(6)
            queue.expire_leases()
            assert job.state == QUEUED
            assert job.attempts == expected_attempt
            clock.advance(16)  # clear the backoff gate
        # The budget (2 retries) is spent: the next expiry is terminal.
        assert queue.claim_next("w") is not None
        clock.advance(6)
        queue.expire_leases()
        assert job.state == FAILED
        assert job.error_code == LEASE_EXPIRED
        assert "retry budget" in job.error
        done = job.events[-1]
        assert done["event"] == "done"
        assert done["error_code"] == LEASE_EXPIRED
        counts = queue.counts()
        assert counts["failed"] == 1
        assert queue.conservation_ok(), counts

    def test_expiry_of_a_cancel_requested_job_retires_cancelled(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5, clock=clock)
        job = queue.submit(_spec())
        queue.claim_next("w")
        queue.request_cancel(job.id)
        assert job.state == RUNNING  # awaiting acknowledgement
        clock.advance(6)
        queue.expire_leases()
        # The worker that would have acknowledged is gone; the watchdog
        # settles the cancel instead of burning a retry.
        assert job.state == CANCELLED
        assert queue.conservation_ok(), queue.counts()


# -- conservation under random chaos (Hypothesis) ---------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 7)),
                min_size=1, max_size=80))
def test_conservation_survives_random_chaos(steps):
    """Interleaving submits, claims, clock jumps, lease expiries,
    zombie finishes, and cancels in any order never unbalances the
    books (the queue also asserts conservation internally on every
    transition, so a violation fails loudly inside the run too)."""
    clock = FakeClock()
    queue = JobQueue(max_active_per_tenant=4, max_queued=6,
                     lease_s=5, max_lease_attempts=2, clock=clock)
    claims = []  # every (job_id, owner) ever issued — stale ones included
    for op, selector in steps:
        if op == 0:  # submit (may shed or hit the quota)
            try:
                queue.submit(_spec(selector % 3))
            except (QuotaExceeded, QueueOverloaded):
                pass
        elif op == 1:  # claim under a fresh lease
            job = queue.claim_next(f"w{selector}")
            if job is not None:
                claims.append((job.id, job.owner))
        elif op == 2:  # time passes (sometimes past lease + backoff)
            clock.advance(selector * 1.7)
        elif op == 3:  # the watchdog fires
            queue.expire_leases()
        elif op == 4:  # cancel any known job (idempotent on terminal)
            jobs = queue.jobs()
            if jobs:
                queue.request_cancel(jobs[selector % len(jobs)].id)
        else:  # a worker (possibly a zombie) reports a result
            if claims:
                job_id, owner = claims[selector % len(claims)]
                state = COMPLETED if selector % 2 else FAILED
                job = queue.get(job_id)
                if job.state == RUNNING and job.cancel_requested \
                        and job.owner == owner:
                    state = CANCELLED
                queue.finish(job_id, state, owner=owner)
        assert queue.conservation_ok(), queue.counts()
    counts = queue.counts()
    assert counts["submitted"] == sum(
        counts[k] for k in ("queued", "running", "completed", "cancelled",
                            "failed", "rejected"))
