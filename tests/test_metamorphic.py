"""Metamorphic tests: known input transformations, predictable outputs.

Rather than pinning absolute numbers, these tests transform a workload in
a way with a *provable* consequence in the model and assert the relation:

- scaling every task's work by k scales total busy cycles affinely
  (busy = sum of depth + II x trips over tasks, so it is linear in trips);
- permuting which lane round-robin assigns tasks to relabels the lanes
  but cannot change any aggregate (total busy, per-lane busy multiset,
  task counts, DRAM traffic) — the mesh NoC makes lane *positions*
  asymmetric, so wall-clock cycles are deliberately not asserted;
- re-running the same seed is bit-identical, sanitizer on or off.

All runs here go through the sanitizer, so every metamorphic execution is
also an invariant-checked execution.
"""

import pytest

from repro.arch.config import default_delta_config
from repro.core.delta import Delta
from repro.core.dispatcher import Dispatcher
from repro.util.fingerprint import result_stats
from repro.workloads.synthetic import SkewedTasks, UniformTasks


def _run_uniform(trips, lanes=2):
    config = default_delta_config(lanes=lanes).with_sanitize(True)
    w = UniformTasks(num_tasks=8, trips=trips)
    result = Delta(config).run(w.build_program())
    w.check(result.state)
    return result


class TestWorkScaling:
    def test_busy_cycles_affine_in_trips(self):
        """Doubling trips adds a constant increment to total busy time:
        busy(t) = 8*depth + 8*II*t, so equal trip deltas give equal busy
        deltas regardless of the (unknown) mapping constants."""
        busy = {t: sum(_run_uniform(t).lane_busy) for t in (64, 128, 256)}
        first_delta = busy[128] - busy[64]
        second_delta = busy[256] - busy[128]
        assert first_delta > 0
        assert second_delta == pytest.approx(2 * first_delta, rel=1e-9)

    def test_busy_scales_with_task_count(self):
        """k times as many identical tasks do exactly k times the work."""
        config = default_delta_config(lanes=2).with_sanitize(True)

        def total_busy(n):
            w = UniformTasks(num_tasks=n, trips=128)
            return sum(Delta(config).run(w.build_program()).lane_busy)

        assert total_busy(16) == pytest.approx(2 * total_busy(8), rel=1e-9)


class TestLanePermutation:
    PERM = {0: 2, 1: 0, 2: 3, 3: 1}

    def _run(self, monkeypatch_or_none):
        config = default_delta_config(lanes=4).with_policy(
            "round-robin").with_sanitize(True)
        w = SkewedTasks(num_tasks=24)
        result = Delta(config).run(w.build_program())
        w.check(result.state)
        return result

    def test_aggregates_invariant_under_lane_relabeling(self, monkeypatch):
        baseline = self._run(None)

        original = Dispatcher._choose_naive
        perm = self.PERM

        def permuted_choice(self, task):
            return perm[original(self, task)]

        monkeypatch.setattr(Dispatcher, "_choose_naive", permuted_choice)
        permuted = self._run(monkeypatch)

        assert permuted.tasks_executed == baseline.tasks_executed
        assert sum(permuted.lane_busy) == pytest.approx(
            sum(baseline.lane_busy), rel=1e-9)
        # The per-lane busy *multiset* survives relabeling even though
        # which physical lane did which work changed.
        assert sorted(permuted.lane_busy) == pytest.approx(
            sorted(baseline.lane_busy), rel=1e-9)
        assert permuted.dram_bytes == pytest.approx(
            baseline.dram_bytes, rel=1e-9)
        for counter in ("dispatch.submitted", "dispatch.dispatched",
                        "dispatch.completed"):
            assert permuted.counters.get(counter) == \
                baseline.counters.get(counter)

    def test_identity_permutation_is_bitwise_identical(self, monkeypatch):
        baseline = self._run(None)
        original = Dispatcher._choose_naive

        def identity_choice(self, task):
            return original(self, task)

        monkeypatch.setattr(Dispatcher, "_choose_naive", identity_choice)
        assert result_stats(self._run(monkeypatch)) == \
            result_stats(baseline)


class TestSanitizedDeterminism:
    @pytest.mark.parametrize("name", ["micro-tree", "micro-skewed"])
    def test_same_seed_bit_identical_under_sanitizer(self, name):
        from repro.workloads import get_workload

        config = default_delta_config(lanes=4).with_sanitize(True)
        first = Delta(config).run(get_workload(name).build_program())
        second = Delta(config).run(get_workload(name).build_program())
        assert result_stats(first) == result_stats(second)

    def test_sanitizer_does_not_perturb_dynamic_workload(self):
        from repro.workloads import get_workload

        w = get_workload("micro-tree")
        plain = Delta(default_delta_config(lanes=4)).run(w.build_program())
        sanitized = Delta(default_delta_config(lanes=4).with_sanitize(True)
                          ).run(w.build_program())
        assert result_stats(sanitized) == result_stats(plain)
