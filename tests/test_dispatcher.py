"""Unit tests for the hardware task dispatcher (repro.core.dispatcher).

The dispatcher is driven directly here (no Delta machine): fake lane
workers pop from the queues and report start/completion, so readiness,
policies, and accounting can be checked in isolation.
"""

from repro.arch.config import DispatchConfig, FeatureFlags
from repro.arch.dfg import dot_product_dfg
from repro.core.annotations import WorkHint
from repro.core.dispatcher import Dispatcher
from repro.core.task import TaskType
from repro.sim import Environment, Counters
from repro.util.rng import DeterministicRng


def make_type(name="t"):
    return TaskType(
        name=name, dfg=dot_product_dfg(name),
        kernel=lambda ctx, args: None,
        trips=lambda args: args.get("trips", 10),
        work_hint=WorkHint(lambda args: args.get("trips", 10)),
    )


def make_dispatcher(env, lanes=2, policy="work-aware",
                    features=None, **cfg_kwargs):
    config = DispatchConfig(policy=policy, **cfg_kwargs)
    return Dispatcher(env, Counters(), config, lanes,
                      features or FeatureFlags(),
                      DeterministicRng("test"))


def drain_worker(env, dispatcher, lane_id, log, service=10):
    """A fake lane worker: pop, wait `service` cycles, complete."""

    def worker():
        queue = dispatcher.queues[lane_id]
        while True:
            task = yield queue.get()
            dispatcher.kick()
            dispatcher.task_started(task)
            log.append((env.now, lane_id, task.args.get("i")))
            yield env.timeout(service)
            dispatcher.task_completed(task)

    return env.process(worker())


class TestReadiness:
    def test_independent_task_dispatches_immediately(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        d.submit(make_type().instantiate({"i": 0}))
        env.run()
        assert log and d.drained.triggered

    def test_after_dep_waits_for_completion(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log, service=50)
        tt = make_type()
        first = tt.instantiate({"i": 0})
        second = tt.instantiate({"i": 1}, after=[first])
        d.submit(second)
        d.submit(first)
        env.run()
        order = [i for _t, _l, i in log]
        assert order == [0, 1]
        start_times = {i: t for t, _l, i in log}
        assert start_times[1] >= 50  # waited for first to complete

    def test_stream_dep_waits_only_for_start_with_pipelining(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log, service=100)
        drain_worker(env, d, 1, log, service=100)
        tt = make_type()
        producer = tt.instantiate({"i": 0})
        consumer = tt.instantiate({"i": 1}, stream_from=[producer])
        d.submit(producer)
        d.submit(consumer)
        env.run()
        start_times = {i: t for t, _l, i in log}
        assert start_times[1] < 100  # did not wait for completion

    def test_stream_dep_waits_for_completion_without_pipelining(self):
        env = Environment()
        features = FeatureFlags(pipelining=False)
        d = make_dispatcher(env, lanes=2, dispatch_cycles=0,
                            features=features)
        log = []
        drain_worker(env, d, 0, log, service=100)
        drain_worker(env, d, 1, log, service=100)
        tt = make_type()
        producer = tt.instantiate({"i": 0})
        consumer = tt.instantiate({"i": 1}, stream_from=[producer])
        d.submit(producer)
        d.submit(consumer)
        env.run()
        start_times = {i: t for t, _l, i in log}
        assert start_times[1] >= 100

    def test_already_completed_dep_is_satisfied(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        tt = make_type()
        first = tt.instantiate({"i": 0})
        d.submit(first)
        env.run()
        second = tt.instantiate({"i": 1}, after=[first])
        d.submit(second)
        env.run()
        assert [i for _t, _l, i in log] == [0, 1]


class TestPolicies:
    def submit_mixed(self, d, sizes):
        tt = make_type()
        for i, size in enumerate(sizes):
            d.submit(tt.instantiate({"i": i, "trips": size}))

    def test_work_aware_separates_heavy_tasks(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, dispatch_cycles=0,
                            work_overhead=0)
        placements = {}

        def worker(lane_id):
            queue = d.queues[lane_id]
            while True:
                task = yield queue.get()
                d.kick()
                d.task_started(task)
                placements[task.args["i"]] = lane_id
                yield env.timeout(task.args["trips"])
                d.task_completed(task)

        env.process(worker(0))
        env.process(worker(1))
        self.submit_mixed(d, [1000, 1000, 10, 10])
        env.run()
        # The two heavy tasks must land on different lanes.
        assert placements[0] != placements[1]

    def test_work_aware_lpt_dispatches_largest_first(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0,
                            work_overhead=0)
        order = []

        def worker():
            queue = d.queues[0]
            while True:
                task = yield queue.get()
                d.kick()
                d.task_started(task)
                order.append(task.args["trips"])
                yield env.timeout(1)
                d.task_completed(task)

        env.process(worker())
        self.submit_mixed(d, [10, 500, 50])
        env.run()
        assert order[0] == 500  # largest ready task goes first

    def test_round_robin_alternates(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="round-robin",
                            dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        drain_worker(env, d, 1, log)
        self.submit_mixed(d, [10] * 6)
        env.run()
        lanes = [lane for _t, lane, _i in sorted(log, key=lambda r: r[2])]
        assert lanes == [0, 1, 0, 1, 0, 1]

    def test_random_policy_uses_all_lanes(self):
        env = Environment()
        d = make_dispatcher(env, lanes=4, policy="random",
                            dispatch_cycles=0)
        log = []
        for lane in range(4):
            drain_worker(env, d, lane, log)
        self.submit_mixed(d, [10] * 40)
        env.run()
        assert len({lane for _t, lane, _i in log}) > 1

    def test_work_aware_ablated_degrades_to_round_robin(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2,
                            features=FeatureFlags(work_aware_lb=False),
                            dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        drain_worker(env, d, 1, log)
        self.submit_mixed(d, [1000, 1000, 10, 10])
        env.run()
        placements = {i: lane
                      for _t, lane, i in log}
        # RR by arrival: heavy tasks 0,1 go to lanes 0,1; order-based.
        assert placements[0] == 0 and placements[1] == 1

    def test_dispatch_cycles_serialize(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=7)
        log = []
        drain_worker(env, d, 0, log, service=0)
        self.submit_mixed(d, [10, 10, 10])
        env.run()
        times = sorted(t for t, _l, _i in log)
        assert times[0] >= 7
        assert times[1] - times[0] >= 7


class TestAccounting:
    def test_pending_work_includes_overhead(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0,
                            work_overhead=100)
        tt = make_type()
        d.submit(tt.instantiate({"i": 0, "trips": 10}))
        env.run()  # dispatch happens; no worker pops
        assert d.pending_work[0] == 110
        assert d.pending_count[0] == 1

    def test_completion_clears_accounting(self):
        env = Environment()
        d = make_dispatcher(env, lanes=1, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        d.submit(make_type().instantiate({"i": 0}))
        env.run()
        assert d.pending_work[0] == 0
        assert d.pending_count[0] == 0
        assert d.outstanding == 0

    def test_drained_fires_once_all_complete(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, dispatch_cycles=0)
        log = []
        drain_worker(env, d, 0, log)
        drain_worker(env, d, 1, log)
        tt = make_type()
        for i in range(5):
            d.submit(tt.instantiate({"i": i}))
        assert not d.drained.triggered
        env.run()
        assert d.drained.triggered


class TestStealing:
    def test_steal_moves_queued_tasks(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal",
                            dispatch_cycles=0, steal_cycles=5)
        tt = make_type()
        # Fill lane 0's queue directly (no workers yet).
        for i in range(4):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        before = d.queues[0].level + d.queues[1].level

        def thief():
            stolen = yield from d.try_steal(1)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value >= 1
        assert d.queues[0].level + d.queues[1].level == before
        assert d.counters.get("dispatch.steals") == 1

    def test_steal_noop_for_other_policies(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="work-aware")

        def thief():
            stolen = yield from d.try_steal(1)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 0

    def test_steal_noop_when_nothing_queued(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal")

        def thief():
            stolen = yield from d.try_steal(0)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 0

    def test_steal_noop_when_thief_is_richest(self):
        # Round-robin placement puts 2 tasks on lane 0, 1 on lane 1: the
        # richest queue is the thief's own, so the steal must be a no-op —
        # no steal_cycles paid, no counter bump.
        env = Environment()
        d = make_dispatcher(env, lanes=2, policy="steal",
                            dispatch_cycles=0, steal_cycles=5)
        tt = make_type()
        for i in range(3):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        assert d.queues[0].level == 2

        def thief():
            stolen = yield from d.try_steal(0)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 0
        assert env.now == 0  # no steal latency charged
        assert d.counters.get("dispatch.steals") == 0

    def test_steal_tie_picks_lowest_indexed_victim(self):
        # Lanes 0 and 1 tie as richest (2 queued each after round-robin
        # placement of 6 tasks over 3 lanes); the victim choice must be
        # deterministic — max() breaks the tie toward the lowest index.
        env = Environment()
        d = make_dispatcher(env, lanes=3, policy="steal",
                            dispatch_cycles=0, steal_cycles=5)
        tt = make_type()
        for i in range(6):
            d.submit(tt.instantiate({"i": i}))
        env.run()
        assert [q.level for q in d.queues] == [2, 2, 2]

        def thief():
            stolen = yield from d.try_steal(2)
            return stolen

        p = env.process(thief())
        env.run()
        assert p.value == 1  # half of the victim's 2 queued tasks
        assert [q.level for q in d.queues] == [1, 2, 3]
        assert d.counters.get("dispatch.steals") == 1


class TestStreamConsumerPlacement:
    def test_consumer_avoids_running_producer_lane(self):
        env = Environment()
        d = make_dispatcher(env, lanes=2, dispatch_cycles=0)
        placements = {}

        def worker(lane_id):
            queue = d.queues[lane_id]
            while True:
                task = yield queue.get()
                d.kick()
                d.task_started(task)
                placements[task.args["i"]] = lane_id
                yield env.timeout(200)
                d.task_completed(task)

        env.process(worker(0))
        env.process(worker(1))
        tt = make_type()
        producer = tt.instantiate({"i": 0})
        consumer = tt.instantiate({"i": 1}, stream_from=[producer])
        d.submit(producer)
        d.submit(consumer)
        env.run()
        assert placements[0] != placements[1]
