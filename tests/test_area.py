"""Tests for the analytical area model (repro.arch.area)."""

import dataclasses

import pytest

from repro.arch.area import AreaParameters, estimate_area
from repro.arch.config import default_delta_config


def test_breakdown_components_positive():
    breakdown = estimate_area(default_delta_config())
    for label, mm2 in breakdown.rows():
        assert mm2 > 0, label


def test_machine_total_is_sum():
    b = estimate_area(default_delta_config())
    assert b.machine_total == pytest.approx(b.lanes_total
                                            + b.taskstream_total)


def test_overhead_fraction_small():
    b = estimate_area(default_delta_config())
    assert 0.005 < b.overhead_fraction < 0.08


def test_more_lanes_more_area_but_bounded_overhead():
    small = estimate_area(default_delta_config(lanes=2))
    large = estimate_area(default_delta_config(lanes=32))
    assert large.lanes_total > small.lanes_total
    assert large.overhead_fraction < 0.08


def test_spad_dominates_lane_area_at_default_config():
    b = estimate_area(default_delta_config())
    assert b.lane_spad > b.lane_compute


def test_custom_parameters_shift_results():
    config = default_delta_config()
    base = estimate_area(config)
    pricey_queues = dataclasses.replace(
        AreaParameters(), task_queue_per_entry=0.01)
    bigger = estimate_area(config, pricey_queues)
    assert bigger.task_queues > base.task_queues
    assert bigger.overhead_fraction > base.overhead_fraction


def test_queue_depth_scales_task_hw():
    config = default_delta_config()
    deeper = dataclasses.replace(
        config, dispatch=dataclasses.replace(config.dispatch,
                                             queue_depth=64))
    assert estimate_area(deeper).task_queues > \
        estimate_area(config).task_queues
