"""Unit tests for repro.util (rng, stats, validation)."""


import pytest
from hypothesis import given, strategies as st

from repro.sim import Counters, Environment, UtilizationTracker
from repro.util import (
    DeterministicRng,
    Histogram,
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    coefficient_of_variation,
    geomean,
    mean,
    percentile,
)
from repro.util.validate import ConfigError


# ------------------------------------------------------------------- rng

def test_rng_reproducible_across_instances():
    a = DeterministicRng("seed", 1)
    b = DeterministicRng("seed", 1)
    assert [a.randint(0, 100) for _ in range(10)] == \
           [b.randint(0, 100) for _ in range(10)]


def test_rng_different_seeds_differ():
    a = DeterministicRng("seed", 1)
    b = DeterministicRng("seed", 2)
    assert [a.randint(0, 10**9) for _ in range(5)] != \
           [b.randint(0, 10**9) for _ in range(5)]


def test_rng_fork_independent_of_parent_consumption():
    parent1 = DeterministicRng("root")
    child1 = parent1.fork("child")
    parent2 = DeterministicRng("root")
    parent2.random()  # consume from parent
    child2 = parent2.fork("child")
    assert [child1.random() for _ in range(5)] == \
           [child2.random() for _ in range(5)]


def test_zipf_sizes_bounds_and_skew():
    rng = DeterministicRng("zipf")
    sizes = rng.zipf_sizes(2000, alpha=1.5, max_size=64)
    assert len(sizes) == 2000
    assert all(1 <= s <= 64 for s in sizes)
    # Skew: small sizes dominate under Zipf.
    ones = sum(1 for s in sizes if s == 1)
    assert ones > 2000 * 0.3


def test_zipf_sizes_edge_cases():
    rng = DeterministicRng("zipf-edge")
    assert rng.zipf_sizes(0, 1.0, 10) == []
    assert rng.zipf_sizes(5, 1.0, 1) == [1] * 5
    with pytest.raises(ValueError):
        rng.zipf_sizes(5, 1.0, 0)


def test_power_law_degrees_range():
    rng = DeterministicRng("deg")
    degs = rng.power_law_degrees(500, alpha=2.0, min_deg=2, max_deg=50)
    assert all(2 <= d <= 50 for d in degs)


def test_pick_weighted_validates():
    rng = DeterministicRng("w")
    with pytest.raises(ValueError):
        rng.pick_weighted([], [])
    with pytest.raises(ValueError):
        rng.pick_weighted([1, 2], [1.0])


def test_pick_weighted_respects_weights():
    rng = DeterministicRng("w2")
    picks = [rng.pick_weighted(["rare", "common"], [0.01, 0.99])
             for _ in range(200)]
    assert picks.count("common") > 150


# ----------------------------------------------------------------- stats

def test_mean_and_geomean_basic():
    assert mean([2, 4, 6]) == 4
    assert geomean([1, 100]) == pytest.approx(10.0)


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([])


def test_cv_zero_for_uniform():
    assert coefficient_of_variation([5, 5, 5]) == 0.0


def test_cv_known_value():
    # values 0, 10: mean 5, population stddev 5 -> CV = 1.
    assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)


def test_percentile_interpolation():
    values = [10, 20, 30, 40]
    assert percentile(values, 0) == 10
    assert percentile(values, 100) == 40
    assert percentile(values, 50) == pytest.approx(25.0)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                max_size=50))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=50), st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, pct):
    p = percentile(values, pct)
    assert min(values) <= p <= max(values)


def test_histogram_buckets_and_render():
    h = Histogram(bucket_width=10)
    h.extend([1, 2, 11, 95])
    assert h.total == 4
    buckets = h.buckets()
    assert buckets[0] == (0, 10, 2)
    assert buckets[1] == (10, 20, 1)
    assert "####" in h.render()


def test_histogram_empty_render():
    assert Histogram(1.0).render() == "(empty histogram)"
    with pytest.raises(ValueError):
        Histogram(0)


# -------------------------------------------------------------- validate

def test_check_positive():
    check_positive("x", 1)
    with pytest.raises(ConfigError, match="x must be positive"):
        check_positive("x", 0)


def test_check_non_negative():
    check_non_negative("x", 0)
    with pytest.raises(ConfigError):
        check_non_negative("x", -1)


def test_check_in_range():
    check_in_range("x", 5, 0, 10)
    with pytest.raises(ConfigError):
        check_in_range("x", 11, 0, 10)


def test_check_power_of_two():
    for good in (1, 2, 4, 64):
        check_power_of_two("banks", good)
    for bad in (0, 3, -4, 6):
        with pytest.raises(ConfigError):
            check_power_of_two("banks", bad)


# ------------------------------------------------------------- counters

def test_counters_add_get_prefix():
    c = Counters()
    c.add("dram.bytes", 100)
    c.add("dram.bytes", 50)
    c.add("noc.bytes", 10)
    assert c.get("dram.bytes") == 150
    assert c.sum_prefix("dram.") == 150
    assert c.sum_prefix("") == 160
    assert c.by_prefix("dram.") == {"bytes": 150}
    assert "dram.bytes" in c
    assert c.get("missing") == 0


def test_counters_set_max():
    c = Counters()
    c.set_max("depth", 3)
    c.set_max("depth", 1)
    c.set_max("depth", 7)
    assert c.get("depth") == 7


def test_counters_merge_and_render():
    a = Counters()
    a.add("x", 1)
    b = Counters()
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.get("x") == 3
    assert "y" in a.render()
    assert Counters().render() == "(no counters)"


def test_utilization_tracker():
    env = Environment()
    counters = Counters()
    tracker = UtilizationTracker(env, counters, "lane0")

    def proc():
        yield env.timeout(10)
        tracker.busy(10)
        yield env.timeout(10)

    env.process(proc())
    env.run()
    assert tracker.busy_cycles == 10
    assert tracker.last_active == 10
    assert tracker.utilization() == pytest.approx(0.5)
    assert counters.get("lane0.busy_cycles") == 10
    with pytest.raises(ValueError):
        tracker.busy(-1)
