"""The server test battery for ``repro serve``.

What must hold (see docs/serving.md):

- **protocol round-trip**: a sweep submitted over the wire streams the
  same per-point numbers a direct in-process ``compare()`` produces,
  field for field;
- **cancellation**: DELETE on a running job propagates into the in-flight
  evaluation points and leaves the queue and pool clean — conservation
  still balances and the server keeps serving;
- **quotas**: a tenant at its active-job quota gets a typed 429; other
  tenants are unaffected;
- **restart recovery**: queued jobs persisted in the ``jobs`` store
  namespace are replayed by a fresh server;
- **coalescing**: duplicate in-flight sweeps — even from different
  tenants — compute once, proven by the ``cache.coalesced`` metric;
- **overload control**: past the global or per-tenant queue-depth cap,
  submissions shed with a typed 503 carrying ``Retry-After``; the books
  still balance;
- **follower takeover**: a coalesced follower bounds its wait on the
  leader and retries as leader once the leader is declared dead;
- **jobs CLI**: ``repro jobs list|gc`` reads the persisted ``jobs``
  namespace directly, with live records shielded from GC;
- **conservation**: random submit/claim/cancel/finish interleavings never
  violate ``submitted == queued + running + completed + cancelled +
  failed + rejected`` (Hypothesis property; the chaos variant with
  lease expiry lives in ``tests/test_chaos.py``).

Every server here binds port 0 on localhost and runs in a background
thread; clients are plain ``http.client`` over the NDJSON protocol.
"""

import http.client
import json
import threading
import time
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import default_delta_config
from repro.eval.parallel import run_suite_parallel
from repro.serve import JobQueue, JobSpec, QuotaExceeded, Server
from repro.serve.protocol import parse_job_spec
from repro.serve.queue import CANCELLED, COMPLETED, FAILED, RUNNING
from repro.workloads import get_workload

LANES = 4
#: Fast registered workloads (fractions of a second per point).
NAMES = ["micro-chain", "micro-skewed"]


# -- harness ----------------------------------------------------------------

@contextmanager
def serving(tmp_path, **kwargs):
    """A live server on a fresh store, torn down gracefully."""
    server = Server(port=0, root=tmp_path / "store", **kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10), "server did not come up"
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(10)
        assert not thread.is_alive(), "server did not shut down"


def request(port, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    return response.status, (json.loads(data) if data else None)


def stream(port, job_id, timeout=120):
    """Consume a job's whole NDJSON event stream (ends at socket close)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/events")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        events = [json.loads(line)
                  for line in response.read().decode().splitlines()]
    finally:
        conn.close()
    return events


def request_full(port, method, path, body=None, timeout=120):
    """Like :func:`request`, but also returns the response headers."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
        headers = dict(response.getheaders())
    finally:
        conn.close()
    return response.status, headers, (json.loads(data) if data else None)


def submit(port, spec):
    status, body = request(port, "POST", "/jobs", body=spec)
    assert status == 201, body
    return body["job"]


def sweep_spec(**overrides):
    spec = {"kind": "sweep", "workloads": NAMES, "lanes": LANES,
            "sanitize": True}
    spec.update(overrides)
    return spec


def wait_for_state(port, job_id, states, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, body = request(port, "GET", f"/jobs/{job_id}")
        if body["state"] in states:
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {states}")


def slow_points(monkeypatch, delay_s):
    """Make every evaluation point take ``delay_s`` extra seconds.

    The server under test runs in this process, so patching the point
    function is enough to hold a job in flight long enough to race it.
    """
    from repro.eval import parallel as parallel_mod

    real = parallel_mod._compare_point

    def slowed(spec):
        time.sleep(delay_s)
        return real(spec)

    monkeypatch.setattr(parallel_mod, "_compare_point", slowed)


# -- the battery ------------------------------------------------------------

class TestProtocolRoundTrip:
    def test_submitted_sweep_matches_direct_compare(self, tmp_path):
        config = default_delta_config(lanes=LANES, seed=0)
        config = config.with_policy("work-aware")
        expected = run_suite_parallel(
            lanes=LANES, workloads=[get_workload(n) for n in NAMES],
            jobs=1, delta_config=config, sanitize=True)
        with serving(tmp_path) as server:
            job_id = submit(server.port, sweep_spec())
            events = stream(server.port, job_id)

            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued" and kinds[1] == "started"
            assert events[-1] == {"event": "done", "job": job_id,
                                  "state": "completed"}
            points = {e["index"]: e for e in events
                      if e["event"] == "point"}
            assert sorted(points) == list(range(len(NAMES)))
            for index, comparison in enumerate(expected):
                event = points[index]
                assert event["outcome"] == "ok"
                assert event["workload"] == comparison.workload
                assert event["delta_cycles"] == comparison.delta.cycles
                assert event["static_cycles"] == comparison.static.cycles
                assert event["speedup"] == comparison.speedup
                assert event["traffic_ratio"] == comparison.traffic_ratio
                assert event["lanes"] == comparison.lanes
                metrics = event["metrics"]
                assert metrics["delta_dram_bytes"] == \
                    comparison.delta.dram_bytes
                assert metrics["static_dram_bytes"] == \
                    comparison.static.dram_bytes
                assert metrics["delta_noc_bytes"] == \
                    comparison.delta.noc_bytes
                assert metrics["static_noc_bytes"] == \
                    comparison.static.noc_bytes
                assert metrics["tasks_executed"] == \
                    comparison.delta.tasks_executed

            # Warm repeat: same spec, zero simulations, same numbers.
            repeat_id = submit(server.port, sweep_spec())
            repeat = [e for e in stream(server.port, repeat_id)
                      if e["event"] == "point"]
            assert [e["outcome"] for e in repeat] == \
                ["cached"] * len(NAMES)
            for fresh, cached in zip(sorted(points.values(),
                                            key=lambda e: e["index"]),
                                     sorted(repeat,
                                            key=lambda e: e["index"])):
                assert cached["delta_cycles"] == fresh["delta_cycles"]
                assert cached["speedup"] == fresh["speedup"]

            health = request(server.port, "GET", "/healthz")[1]
            assert health["cache"]["hits"] >= len(NAMES)
            assert health["cache"]["hit_rate"] > 0
            assert health["conservation_ok"] is True
            assert health["queue"]["completed"] == 2

    def test_typed_errors_over_the_wire(self, tmp_path):
        with serving(tmp_path) as server:
            port = server.port
            cases = [
                ({"kind": "sweep", "workloads": ["no-such-workload"]},
                 400, "bad-spec"),
                ({"kind": "sweep", "workloads": NAMES, "polcy": "x"},
                 400, "bad-spec"),
                ({"kind": "sweep", "workloads": NAMES,
                  "policy": "no-such-policy"}, 400, "unknown-policy"),
                ({"kind": "compare", "workloads": NAMES}, 400, "bad-spec"),
            ]
            for spec, want_status, want_code in cases:
                status, body = request(port, "POST", "/jobs", body=spec)
                assert status == want_status, body
                assert body["error"]["code"] == want_code
            status, body = request(port, "GET", "/jobs/doesnotexist")
            assert (status, body["error"]["code"]) == (404, "unknown-job")
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("POST", "/jobs", body=b"{not json")
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            assert response.status == 400
            assert body["error"]["code"] == "bad-json"
            # None of those rejections may unbalance the books.
            health = request(port, "GET", "/healthz")[1]
            assert health["conservation_ok"] is True


class TestQuotas:
    def test_tenant_at_quota_gets_typed_429(self, tmp_path):
        with serving(tmp_path, start_paused=True,
                     max_active_per_tenant=2) as server:
            port = server.port
            submit(port, sweep_spec(tenant="greedy"))
            submit(port, sweep_spec(tenant="greedy", seed=1))
            status, body = request(port, "POST", "/jobs",
                                   body=sweep_spec(tenant="greedy",
                                                   seed=2))
            assert status == 429
            assert body["error"]["code"] == "quota-exceeded"
            # The quota is per tenant: another tenant still gets in.
            submit(port, sweep_spec(tenant="patient"))
            health = request(port, "GET", "/healthz")[1]
            assert health["queue"]["rejected"] == 1
            assert health["queue"]["queued"] == 3
            assert health["tenants"]["greedy"]["active"] == 2
            assert health["conservation_ok"] is True


class TestOverloadShedding:
    def test_global_queue_cap_sheds_typed_503(self, tmp_path):
        with serving(tmp_path, start_paused=True, max_queued=2) as server:
            port = server.port
            submit(port, sweep_spec(seed=1))
            submit(port, sweep_spec(seed=2))
            status, headers, body = request_full(
                port, "POST", "/jobs", body=sweep_spec(seed=3))
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            # Retry-After is advisory load-shedding contract: header and
            # body must agree and be a positive whole number of seconds.
            retry_after = int(headers["Retry-After"])
            assert retry_after >= 1
            assert body["error"]["retry_after_s"] == retry_after

            health = request(port, "GET", "/healthz")[1]
            assert health["queue"]["rejected"] == 1
            assert health["serve"]["shed"] == 1
            assert health["queue"]["queued"] == 2
            assert health["conservation_ok"] is True
            assert health["overload"]["max_queued"] == 2

    def test_backlog_cap_is_per_tenant(self, tmp_path):
        with serving(tmp_path, start_paused=True,
                     max_backlog_per_tenant=1) as server:
            port = server.port
            submit(port, sweep_spec(tenant="noisy"))
            status, _headers, body = request_full(
                port, "POST", "/jobs",
                body=sweep_spec(tenant="noisy", seed=1))
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            # Another tenant is unaffected by the noisy one's backlog.
            submit(port, sweep_spec(tenant="quiet"))
            health = request(port, "GET", "/healthz")[1]
            assert health["queue"]["queued"] == 2
            assert health["queue"]["rejected"] == 1
            assert health["conservation_ok"] is True


class TestFollowerTakeover:
    """A coalesced follower must not wait forever on a dead leader."""

    def test_follower_takes_over_an_abandoned_leader(self):
        from repro.store import Coalescer

        coalescer = Coalescer()
        leader_started = threading.Event()
        leader_release = threading.Event()

        def wedged_leader():
            leader_started.set()
            leader_release.wait(30)
            return "leader"

        leader = threading.Thread(
            target=lambda: coalescer.run("key", wedged_leader),
            daemon=True)
        leader.start()
        assert leader_started.wait(10)

        polls = []

        def abandoned():
            polls.append(1)
            # First two polls: leader still looks alive; third: declared
            # dead (in the server this is queue.job_alive going False
            # once the leader's lease expires).
            return len(polls) >= 3

        result = coalescer.run("key", lambda: "follower",
                               poll_s=0.01, abandoned=abandoned)
        assert result == "follower"
        assert len(polls) == 3
        leader_release.set()
        leader.join(10)

    def test_follower_still_waits_on_a_live_leader(self):
        from repro.store import Coalescer

        coalescer = Coalescer()
        leader_started = threading.Event()
        leader_release = threading.Event()
        results = {}

        def slow_leader():
            leader_started.set()
            assert leader_release.wait(30)
            return "leader"

        leader = threading.Thread(
            target=lambda: results.update(
                leader=coalescer.run("key", slow_leader)),
            daemon=True)
        leader.start()
        assert leader_started.wait(10)

        def follower():
            results["follower"] = coalescer.run(
                "key", lambda: "follower",
                poll_s=0.01, abandoned=lambda: False)

        follower_thread = threading.Thread(target=follower, daemon=True)
        follower_thread.start()
        time.sleep(0.1)  # let the follower poll a few times
        leader_release.set()
        leader.join(10)
        follower_thread.join(10)
        # The leader stayed alive, so the follower replays its result
        # instead of recomputing.
        assert results == {"leader": "leader", "follower": "leader"}


class TestJobsCli:
    """``repro jobs`` inspects/GCs the jobs namespace with no server."""

    def _seeded_store(self, tmp_path):
        from repro.store import open_store

        store = open_store(tmp_path / "store")
        queue = JobQueue(store=store)
        live = queue.submit(_spec(0))
        done = queue.submit(_spec(1))
        claimed = queue.claim_next()
        assert claimed.id == live.id or claimed.id == done.id
        # Retire one job; keep the other live (queued or running).
        other = live.id if claimed.id == done.id else done.id
        queue.finish(claimed.id, COMPLETED, owner=claimed.owner)
        return store, claimed.id, other

    def test_list_shows_every_record(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store, finished, live = self._seeded_store(tmp_path)
        assert cli_main(["jobs", "list",
                         "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert finished in out and live in out
        assert "completed" in out

    def test_gc_prunes_terminal_but_shields_live(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store, finished, live = self._seeded_store(tmp_path)
        assert cli_main(["jobs", "gc", "--older-than", "0",
                         "--cache-dir", str(tmp_path / "store")]) == 0
        assert cli_main(["jobs", "list",
                         "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert live in out
        assert finished not in out


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, tmp_path):
        with serving(tmp_path, start_paused=True) as server:
            job_id = submit(server.port, sweep_spec())
            status, body = request(server.port, "DELETE",
                                   f"/jobs/{job_id}")
            assert status == 202
            assert body["state"] == "cancelled"
            events = stream(server.port, job_id)
            assert events[-1]["state"] == "cancelled"
            health = request(server.port, "GET", "/healthz")[1]
            assert health["queue"]["cancelled"] == 1
            assert health["conservation_ok"] is True

    def test_mid_flight_cancel_leaves_queue_and_pool_clean(self, tmp_path,
                                                           monkeypatch):
        slow_points(monkeypatch, delay_s=0.3)
        with serving(tmp_path, max_concurrent_jobs=1) as server:
            port = server.port
            job_id = submit(port, sweep_spec(
                workloads=NAMES + ["micro-shared"]))
            wait_for_state(port, job_id, {"running"})
            status, body = request(port, "DELETE", f"/jobs/{job_id}")
            assert status == 202 and body["cancel_requested"] is True
            events = stream(port, job_id)
            assert events[-1]["state"] == "cancelled"
            # Points never computed report "cancelled" with no numbers.
            cancelled = [e for e in events if e["event"] == "point"
                         and e["outcome"] == "cancelled"]
            assert cancelled, "no point observed the cancellation"
            assert all("delta_cycles" not in e for e in cancelled)

            health = request(port, "GET", "/healthz")[1]
            assert health["queue"]["running"] == 0
            assert health["queue"]["queued"] == 0
            assert health["queue"]["cancelled"] == 1
            assert health["conservation_ok"] is True
            assert health["inflight_sweeps"] == 0

            # The pool is clean: the next job runs to completion.
            follow_up = submit(port, sweep_spec(seed=7))
            assert stream(port, follow_up)[-1]["state"] == "completed"
            assert request(port, "GET", "/healthz")[1]["conservation_ok"] \
                is True


class TestRestartRecovery:
    def test_queued_jobs_survive_a_restart(self, tmp_path):
        with serving(tmp_path, start_paused=True) as server:
            first = submit(server.port, sweep_spec())
            second = submit(server.port, sweep_spec(seed=1,
                                                    tenant="other"))
            assert request(server.port, "GET",
                           "/healthz")[1]["queue"]["queued"] == 2
        # Same store root, fresh process state: recovery must replay both.
        with serving(tmp_path) as reborn:
            for job_id in (first, second):
                events = stream(reborn.port, job_id)
                assert events[-1]["state"] == "completed"
                assert any(e["event"] == "requeued" for e in events)
            health = request(reborn.port, "GET", "/healthz")[1]
            assert health["queue"]["replayed"] == 2
            assert health["queue"]["completed"] == 2
            assert health["serve"]["replayed"] == 2
            assert health["conservation_ok"] is True

    def test_terminal_jobs_stay_streamable_after_restart(self, tmp_path):
        with serving(tmp_path) as server:
            job_id = submit(server.port, sweep_spec())
            done = stream(server.port, job_id)
            assert done[-1]["state"] == "completed"
        with serving(tmp_path) as reborn:
            replay = stream(reborn.port, job_id)
            assert replay == done
            # History replays do not re-enter the live accounting.
            health = request(reborn.port, "GET", "/healthz")[1]
            assert health["queue"]["submitted"] == 0
            assert health["conservation_ok"] is True


class TestMultiClientSoak:
    def test_duplicate_sweeps_from_four_tenants_compute_once(
            self, tmp_path, monkeypatch):
        slow_points(monkeypatch, delay_s=0.5)
        clients = 4
        with serving(tmp_path, max_concurrent_jobs=clients) as server:
            port = server.port
            results: dict = {}

            def client(tenant: str) -> None:
                # Identical sweep from every tenant: the sweep_key
                # excludes tenant, so these must coalesce onto one run.
                job_id = submit(port, sweep_spec(tenant=tenant))
                results[tenant] = stream(port, job_id)

            threads = [threading.Thread(target=client, args=(f"t{i}",))
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert len(results) == clients

            computed = 0
            for events in results.values():
                assert events[-1]["state"] == "completed"
                points = [e for e in events if e["event"] == "point"]
                assert len(points) == len(NAMES)
                outcomes = {e["outcome"] for e in points}
                assert outcomes <= {"ok", "coalesced", "cached"}
                if "ok" in outcomes:
                    computed += sum(1 for e in points
                                    if e["outcome"] == "ok")
            # Exactly one client was the leader; its points computed,
            # every other client replayed them.
            assert computed == len(NAMES)

            health = request(port, "GET", "/healthz")[1]
            assert health["serve"]["coalesced_sweeps"] == clients - 1
            assert health["cache"]["coalesced"] >= clients - 1
            assert health["queue"]["completed"] == clients
            assert health["conservation_ok"] is True


# -- the job-queue state machine under Hypothesis ---------------------------

def _spec(tenant: int) -> JobSpec:
    return JobSpec(kind="sweep", workloads=("micro-chain",),
                   tenant=f"t{tenant}")


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 7),
                          st.integers(0, 3)),
                min_size=1, max_size=100))
def test_random_interleavings_conserve_jobs(steps):
    """submit/claim/cancel/finish in any order never unbalance
    ``submitted == queued + running + completed + cancelled + failed +
    rejected`` (the queue also asserts this internally on every
    transition — a violation fails loudly, not just here)."""
    queue = JobQueue(store=None, max_active_per_tenant=3)
    running: list = []
    for op, selector, tenant in steps:
        if op == 0:  # submit (may hit the quota)
            try:
                queue.submit(_spec(tenant))
            except QuotaExceeded:
                pass
        elif op == 1:  # claim
            job = queue.claim_next()
            if job is not None:
                running.append(job.id)
        elif op == 2:  # cancel any known job (idempotent on terminal)
            jobs = queue.jobs()
            if jobs:
                queue.request_cancel(jobs[selector % len(jobs)].id)
        else:  # finish one running job, honouring cancel requests
            if running:
                job_id = running.pop(selector % len(running))
                job = queue.get(job_id)
                if job.state == RUNNING:
                    if job.cancel_requested:
                        state = CANCELLED
                    else:
                        state = COMPLETED if selector % 2 else FAILED
                    queue.finish(job_id, state)
        assert queue.conservation_ok(), queue.counts()
    counts = queue.counts()
    assert counts["submitted"] == sum(
        counts[k] for k in ("queued", "running", "completed", "cancelled",
                            "failed", "rejected"))


class TestSpecParsing:
    def test_sweep_key_ignores_tenant_and_priority(self):
        base = parse_job_spec(sweep_spec())
        other = parse_job_spec(sweep_spec(tenant="else", priority=9))
        assert base.sweep_key() == other.sweep_key()
        assert parse_job_spec(sweep_spec(seed=1)).sweep_key() != \
            base.sweep_key()

    def test_compare_kind_is_one_workload(self):
        spec = parse_job_spec({"kind": "compare", "workload": NAMES[0]})
        assert spec.workloads == (NAMES[0],)

    def test_bool_is_not_an_int(self):
        from repro.serve.protocol import SpecError

        with pytest.raises(SpecError):
            parse_job_spec(sweep_spec(lanes=True))
