"""Tests for the software-task-runtime baseline (repro.baseline.software)."""

import pytest

from repro.arch.config import default_delta_config
from repro.baseline.software import (
    SOFTWARE_DISPATCH_CYCLES,
    SOFTWARE_TASK_OVERHEAD,
    SoftwareRuntime,
    software_runtime_config,
)
from repro.core.delta import Delta
from repro.workloads.synthetic import SkewedTasks, SharedReadTasks, UniformTasks


def test_config_derivation():
    base = default_delta_config(lanes=4)
    cfg = software_runtime_config(base)
    assert cfg.lanes == base.lanes
    assert cfg.dram == base.dram
    assert cfg.dispatch.policy == "steal"
    assert cfg.dispatch.dispatch_cycles == SOFTWARE_DISPATCH_CYCLES
    assert cfg.lane.task_overhead_cycles == SOFTWARE_TASK_OVERHEAD
    assert not cfg.features.pipelining
    assert not cfg.features.multicast


def test_runs_and_verifies():
    w = UniformTasks(num_tasks=16, trips=128)
    result = SoftwareRuntime(default_delta_config(lanes=4)).run(
        w.build_program())
    w.check(result.state)
    assert result.machine == "software"
    assert result.tasks_executed == 16


def test_pays_per_task_overhead():
    w = UniformTasks(num_tasks=16, trips=128)
    sw = SoftwareRuntime(default_delta_config(lanes=4)).run(
        w.build_program())
    assert sw.counters.get("runtime.task_overhead_cycles") == \
        16 * SOFTWARE_TASK_OVERHEAD


def test_slower_than_delta():
    w = UniformTasks(num_tasks=24, trips=128)
    delta = Delta(default_delta_config(lanes=4)).run(w.build_program())
    sw = SoftwareRuntime(default_delta_config(lanes=4)).run(
        w.build_program())
    assert sw.cycles > delta.cycles


def test_no_multicast_traffic_savings():
    w = SharedReadTasks(num_tasks=16)
    delta = Delta(default_delta_config(lanes=4)).run(w.build_program())
    sw = SoftwareRuntime(default_delta_config(lanes=4)).run(
        w.build_program())
    assert sw.dram_bytes > delta.dram_bytes
    assert sw.counters.get("mcast.fetches") == 0


def test_dynamic_balance_still_works():
    """Stealing keeps imbalance moderate despite no work hints."""
    w = SkewedTasks(num_tasks=48)
    sw = SoftwareRuntime(default_delta_config(lanes=4)).run(
        w.build_program())
    w.check(sw.state)
    assert sw.counters.get("dispatch.completed") == 48


def test_delta_config_unaffected_by_default():
    """The default Delta lane pays no software task overhead."""
    base = default_delta_config(lanes=2)
    assert base.lane.task_overhead_cycles == 0
    w = UniformTasks(num_tasks=4)
    result = Delta(base).run(w.build_program())
    assert result.counters.get("runtime.task_overhead_cycles") == 0
