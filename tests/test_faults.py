"""Tests for the fault-injection subsystem (repro.sim.faults).

The contract under test (see docs/faults.md):

- **zero-overhead identity**: with ``faults=None`` or an *empty* plan,
  result fingerprints are bit-identical to a build without the subsystem,
  on every registered workload, on both runtimes — the hooks are purely
  additive, exactly like the sanitizer's;
- **seeded determinism**: the same (plan, config, workload) triple
  reproduces the same degraded run bit-for-bit;
- **recovery**: every fault kind has a recovery path that completes the
  run (visible in the ``recovery.*`` counters, clean under the model
  sanitizer) and an exhaustion path raising :class:`UnrecoverableFault`
  naming the fault kind, task, lane and cycle;
- **plumbing**: plans arrive via ``MachineConfig.faults`` /
  ``with_faults()`` / ``$REPRO_FAULTS`` / JSON files, and a plan that
  names a lane the machine does not have is rejected up front.
"""

import json

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.machine.machine import Machine
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    LaneFailure,
    NullFaultInjector,
    RetryPolicy,
    UnrecoverableFault,
)
from repro.util.fingerprint import result_stats
from repro.workloads import get_workload
from repro.workloads.registry import workload_names
from repro.workloads.synthetic import SkewedTasks, UniformTasks

LANES = 4


def fault_counters(result):
    """The faults.*/recovery.* slice of a result's counter bag."""
    return {key: value for key, value in dict(result.counters.snapshot()
                                              ).items()
            if key.startswith(("faults.", "recovery."))}


# ---------------------------------------------------------------- the plan


class TestFaultPlan:
    def test_defaults_are_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(task_fault_rate=0.1).is_empty()
        assert not FaultPlan(
            lane_failures=(LaneFailure(0, 100.0),)).is_empty()

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(task_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(noc_drop_rate=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            LaneFailure(lane=-1, cycle=0.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            lane_failures=(LaneFailure(1, 500.0), LaneFailure(3, 900.0)),
            task_fault_rate=0.05, noc_drop_rate=0.01,
            dram_spike_rate=0.02, dram_spike_cycles=300.0,
            retry=RetryPolicy(max_attempts=5, backoff_cycles=32.0),
            seed=7)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_json(json.loads(plan.dumps())) == plan

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_json({"task_fault_rate": 0.1, "typo": 1})

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(task_fault_rate=0.1, seed=3)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            FaultPlan.load(path)

    def test_null_injector_is_disarmed(self):
        assert not NullFaultInjector().enabled
        assert not FaultInjector(FaultPlan()).enabled
        assert FaultInjector(FaultPlan(task_fault_rate=0.1)).enabled


# ----------------------------------------------------- zero-overhead identity


class TestEmptyPlanIdentity:
    """faults=None and faults=FaultPlan() are bit-identical, everywhere.

    This is the hard correctness contract: ``result_stats`` covers cycles,
    per-lane busy time and the *entire* counter bag, so any stray event,
    RNG draw or counter write on the no-fault path fails here.
    """

    @pytest.mark.parametrize("name", workload_names())
    def test_delta(self, name):
        workload = get_workload(name)
        config = default_delta_config(lanes=LANES)
        plain = Delta(config).run(workload.build_program())
        armed = Delta(config.with_faults(FaultPlan())).run(
            workload.build_program())
        assert result_stats(plain) == result_stats(armed)
        assert fault_counters(plain) == {}
        assert fault_counters(armed) == {}

    @pytest.mark.parametrize("name", workload_names())
    def test_static(self, name):
        workload = get_workload(name)
        config = default_baseline_config(lanes=LANES)
        plain = StaticParallel(config).run(workload.build_program())
        armed = StaticParallel(config.with_faults(FaultPlan())).run(
            workload.build_program())
        assert result_stats(plain) == result_stats(armed)
        assert fault_counters(armed) == {}


# -------------------------------------------------------- seeded determinism


RICH_PLAN = FaultPlan(
    lane_failures=(LaneFailure(1, 2000.0),),
    task_fault_rate=0.2, noc_drop_rate=0.02,
    dram_spike_rate=0.05, dram_spike_cycles=200.0,
    retry=RetryPolicy(max_attempts=8, backoff_cycles=32.0), seed=7)


class TestSeededDeterminism:
    @pytest.mark.parametrize("name", ["micro-skewed", "micro-shared",
                                      "spmv"])
    def test_delta_repeatable(self, name):
        workload = get_workload(name)
        config = default_delta_config(lanes=LANES).with_faults(RICH_PLAN)
        first = Delta(config).run(workload.build_program())
        second = Delta(config).run(workload.build_program())
        assert result_stats(first) == result_stats(second)
        workload.check(first.state)

    def test_static_repeatable(self):
        workload = get_workload("micro-uniform")
        config = default_baseline_config(lanes=LANES).with_faults(RICH_PLAN)
        first = StaticParallel(config).run(workload.build_program())
        second = StaticParallel(config).run(workload.build_program())
        assert result_stats(first) == result_stats(second)
        workload.check(first.state)


# ------------------------------------------------------------ recovery paths


def sanitized_delta(plan, lanes=LANES):
    return default_delta_config(lanes=lanes).with_faults(plan) \
        .with_sanitize(True)


class TestRecoveryPaths:
    """Each fault kind recovers, sanitizer-clean, with the story told in
    the recovery.* counters; results still verify functionally."""

    def test_transient_task_faults_retry(self):
        plan = FaultPlan(task_fault_rate=0.5,
                         retry=RetryPolicy(max_attempts=20,
                                           backoff_cycles=16.0), seed=2)
        workload = UniformTasks(num_tasks=32)
        result = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters["faults.task_transient"] > 0
        assert counters["recovery.retries"] == \
            counters["faults.task_transient"]
        assert counters["recovery.recovery_cycles"] > 0

    def test_noc_drops_retransmit(self):
        plan = FaultPlan(noc_drop_rate=0.3,
                         retry=RetryPolicy(max_attempts=50), seed=3)
        workload = get_workload("micro-shared")
        result = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters.get("recovery.noc_retransmits", 0) \
            == counters.get("faults.noc_dropped", 0)
        assert counters["faults.injected"] > 0

    def test_stream_replay(self):
        # micro-chain pipelines producer->consumer chunks; corrupting them
        # forces replay from the last acknowledged chunk.
        plan = FaultPlan(noc_drop_rate=0.2,
                         retry=RetryPolicy(max_attempts=50,
                                           backoff_cycles=8.0), seed=5)
        workload = get_workload("micro-chain")
        result = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters["faults.stream_corrupt"] > 0
        assert counters["recovery.replayed_chunks"] == \
            counters["faults.stream_corrupt"]
        assert counters["recovery.replayed_bytes"] > 0

    def test_multicast_refetch(self):
        plan = FaultPlan(noc_drop_rate=0.25,
                         retry=RetryPolicy(max_attempts=50), seed=4)
        workload = get_workload("micro-shared")
        result = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters["faults.mcast_dropped"] > 0
        assert counters["recovery.refetches"] > 0
        assert counters["recovery.refetch_bytes"] > 0

    def test_dram_spikes_absorbed(self):
        plan = FaultPlan(dram_spike_rate=0.5, dram_spike_cycles=100.0,
                         seed=6)
        workload = get_workload("micro-uniform")
        plain = Delta(default_delta_config(lanes=LANES)).run(
            workload.build_program())
        spiked = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(spiked.state)
        counters = fault_counters(spiked)
        assert counters["faults.dram_spikes"] > 0
        assert counters["recovery.absorbed_spike_cycles"] == \
            counters["faults.dram_spike_cycles"]
        assert spiked.cycles >= plain.cycles

    def test_delta_lane_failstop_redispatches(self):
        plan = FaultPlan(lane_failures=(LaneFailure(1, 500.0),))
        workload = SkewedTasks(num_tasks=48)
        result = Delta(sanitized_delta(plan)).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters["faults.lane_failstop"] == 1
        assert counters["recovery.lanes_lost"] == 1
        # Survivors absorb the backlog: the run still retires every task.
        assert result.tasks_executed == 48

    def test_static_lane_failstop_repair_pass(self):
        plan = FaultPlan(lane_failures=(LaneFailure(1, 0.0),))
        workload = UniformTasks(num_tasks=32)
        config = default_baseline_config(lanes=LANES) \
            .with_faults(plan).with_sanitize(True)
        result = StaticParallel(config).run(workload.build_program())
        workload.check(result.state)
        counters = fault_counters(result)
        assert counters["faults.lane_failstop"] == 1
        assert counters["recovery.redispatched"] > 0


# ----------------------------------------------------------- exhaustion paths


class TestExhaustion:
    def test_transient_fault_budget_exhausts(self):
        plan = FaultPlan(task_fault_rate=1.0,
                         retry=RetryPolicy(max_attempts=2))
        workload = get_workload("micro-uniform")
        with pytest.raises(UnrecoverableFault) as excinfo:
            Delta(sanitized_delta(plan)).run(workload.build_program())
        err = excinfo.value
        assert err.fault == "transient-task-fault"
        assert err.task is not None
        assert err.lane is not None
        assert err.cycle is not None
        assert "task=" in str(err) and "lane=" in str(err)

    def test_noc_loss_budget_exhausts(self):
        plan = FaultPlan(noc_drop_rate=1.0,
                         retry=RetryPolicy(max_attempts=3))
        workload = get_workload("micro-shared")
        with pytest.raises(UnrecoverableFault) as excinfo:
            Delta(sanitized_delta(plan)).run(workload.build_program())
        assert excinfo.value.fault in ("noc-packet-loss",
                                       "stream-replay-exhausted")

    def test_dram_watchdog_trips(self):
        plan = FaultPlan(dram_spike_rate=1.0, dram_spike_cycles=5000.0,
                         dram_timeout_cycles=1000.0)
        workload = get_workload("micro-uniform")
        with pytest.raises(UnrecoverableFault) as excinfo:
            Delta(sanitized_delta(plan)).run(workload.build_program())
        assert excinfo.value.fault == "dram-timeout"

    def test_all_lanes_dead_is_unrecoverable_on_delta(self):
        plan = FaultPlan(lane_failures=tuple(
            LaneFailure(lane, 200.0) for lane in range(LANES)))
        workload = SkewedTasks(num_tasks=48)
        with pytest.raises(UnrecoverableFault) as excinfo:
            Delta(sanitized_delta(plan)).run(workload.build_program())
        assert excinfo.value.fault == "lane-fail-stop"

    def test_all_lanes_dead_is_unrecoverable_on_static(self):
        plan = FaultPlan(lane_failures=tuple(
            LaneFailure(lane, 0.0) for lane in range(LANES)))
        workload = UniformTasks(num_tasks=32)
        config = default_baseline_config(lanes=LANES).with_faults(plan)
        with pytest.raises(UnrecoverableFault) as excinfo:
            StaticParallel(config).run(workload.build_program())
        assert excinfo.value.fault == "lane-fail-stop"


# ------------------------------------------------------------------ plumbing


class TestPlumbing:
    def test_with_faults_sets_config_field(self):
        plan = FaultPlan(task_fault_rate=0.1)
        config = default_delta_config(lanes=LANES)
        assert config.faults is None
        assert config.with_faults(plan).faults == plan

    def test_machine_build_arms_injector(self):
        plan = FaultPlan(task_fault_rate=0.1)
        machine = Machine.build(
            default_delta_config(lanes=LANES).with_faults(plan))
        assert machine.injector.enabled
        assert machine.injector.plan == plan

    def test_machine_build_without_plan_uses_null_injector(self):
        machine = Machine.build(default_delta_config(lanes=LANES))
        assert not machine.injector.enabled

    def test_env_variable_arms_injector(self, tmp_path, monkeypatch):
        plan = FaultPlan(task_fault_rate=0.1, seed=9)
        path = tmp_path / "plan.json"
        plan.save(path)
        monkeypatch.setenv("REPRO_FAULTS", str(path))
        machine = Machine.build(default_delta_config(lanes=LANES))
        assert machine.injector.enabled
        assert machine.injector.plan == plan

    def test_config_plan_wins_over_env(self, tmp_path, monkeypatch):
        armed = FaultPlan(task_fault_rate=0.5, seed=1)
        path = tmp_path / "plan.json"
        armed.save(path)
        monkeypatch.setenv("REPRO_FAULTS", str(path))
        # An explicit (empty) config plan overrides the environment.
        machine = Machine.build(
            default_delta_config(lanes=LANES).with_faults(FaultPlan()))
        assert not machine.injector.enabled

    def test_plan_naming_missing_lane_rejected(self):
        plan = FaultPlan(lane_failures=(LaneFailure(9, 100.0),))
        with pytest.raises(ValueError, match="lane 9"):
            Machine.build(
                default_delta_config(lanes=LANES).with_faults(plan))

    def test_compare_inherits_faults_into_static(self):
        from repro.eval.runner import compare

        plan = FaultPlan(task_fault_rate=0.3, seed=2,
                         retry=RetryPolicy(max_attempts=10))
        workload = SkewedTasks(num_tasks=24)
        comparison = compare(
            workload, default_delta_config(lanes=LANES).with_faults(plan))
        assert fault_counters(comparison.delta)["faults.injected"] > 0
        assert fault_counters(comparison.static)["faults.injected"] > 0
