"""The determinism contract: same seed => bit-identical run statistics.

Every stochastic component draws from :mod:`repro.util.rng`, seeded from
the configuration alone, so repeating a (workload, config) point must
reproduce every statistic bit-for-bit — on both machines, for every
registered workload. This is what makes the on-disk result cache sound
and golden regression files meaningful.
"""

import pytest

from repro.arch.config import default_delta_config
from repro.core.delta import Delta
from repro.eval.cache import EvalCache
from repro.eval.runner import compare
from repro.util.fingerprint import result_fingerprint, result_stats
from repro.workloads.registry import get_workload, workload_names
from repro.workloads.synthetic import SkewedTasks

LANES = 4


@pytest.mark.parametrize("name", workload_names())
def test_same_seed_is_bit_identical_on_both_machines(name):
    """Two runs of the same point agree on every statistic, both machines."""
    first = compare(get_workload(name), default_delta_config(lanes=LANES),
                    verify=False)
    second = compare(get_workload(name), default_delta_config(lanes=LANES),
                     verify=False)
    # Full stats tuples (cycles, tasks, per-lane busy vector, every
    # hardware counter) — not just headline numbers.
    assert result_stats(first.delta) == result_stats(second.delta)
    assert result_stats(first.static) == result_stats(second.static)
    assert result_fingerprint(first.delta) == result_fingerprint(second.delta)
    assert result_fingerprint(first.static) == \
        result_fingerprint(second.static)


def test_different_seeds_differ_where_the_seed_matters():
    """The harness surfaces seed differences instead of masking them.

    The ``random`` dispatch policy draws lane choices from the
    config-seeded RNG, so two seeds must produce observably different
    schedules (and therefore different busy vectors / cycle counts).
    """
    workload = SkewedTasks()
    runs = {}
    for seed in (0, 1):
        cfg = default_delta_config(lanes=LANES, seed=seed)
        cfg = cfg.with_policy("random")
        result = Delta(cfg).run(workload.build_program())
        runs[seed] = result_fingerprint(result)
    assert runs[0] != runs[1]


def test_different_seeds_get_different_cache_keys(tmp_path):
    """Distinct seeds are distinct cache points — never served as repeats."""
    cache = EvalCache(tmp_path)
    workload = get_workload("spmv")
    keys = set()
    for seed in (0, 1):
        delta_cfg = default_delta_config(lanes=LANES, seed=seed)
        from repro.arch.config import default_baseline_config

        static_cfg = default_baseline_config(lanes=LANES, seed=seed)
        keys.add(cache.key_for(workload, delta_cfg, static_cfg))
    assert len(keys) == 2


def test_same_seed_same_cache_key_across_instances(tmp_path):
    """Rebuilding the same workload yields the same key (stable hashing)."""
    cache = EvalCache(tmp_path)
    from repro.arch.config import default_baseline_config

    delta_cfg = default_delta_config(lanes=LANES)
    static_cfg = default_baseline_config(lanes=LANES)
    key_a = cache.key_for(get_workload("spmv"), delta_cfg, static_cfg)
    key_b = cache.key_for(get_workload("spmv"), delta_cfg, static_cfg)
    assert key_a == key_b
