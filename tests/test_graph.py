"""Tests for repro.graph: the TaskGraph IR, analyses, and structure cache.

Covers the structural contracts the rest of the repository leans on:

- critical path / parallelism on hand-built diamond, chain, and fan-out
  graphs with known answers, under both ``after`` and ``stream`` timing;
- validation diagnostics: dangling dependences (silently accepted by the
  legacy expansion), duplicates, cycles, and insane work estimates;
- view equivalence: ``TaskGraph.as_expanded()`` reproduces the legacy
  ``expand_program`` output on every registered workload;
- sharing sets vs the counters the simulator actually records (multicast
  on Delta, duplicate-fetch bytes on the static baseline);
- the on-disk structure cache: hit/miss/corruption semantics and
  code-version invalidation covering ``repro/graph/`` itself.
"""

import pickle

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.arch.dfg import dot_product_dfg
from repro.baseline.static import StaticParallel
from repro.core.annotations import ReadSpec, WorkHint
from repro.core.delta import Delta
from repro.core.program import Program, expand_program
from repro.core.task import TaskType
from repro.graph import (
    EdgeKind,
    GraphValidationError,
    StructureCache,
    TaskGraph,
    critical_path,
    graph_dot,
    graph_summary,
    parallelism_profile,
    recover_structure,
    sharing_sets,
    structure_summary,
    summarize,
    work_histogram,
)
from repro.workloads import get_workload
from repro.workloads.registry import workload_names
from repro.workloads.synthetic import SharedReadTasks


def make_type(name="t", shared_region=None, region_bytes=1024):
    """A task type whose work is its ``work`` arg; no-op kernel."""
    reads = (lambda args: ())
    if shared_region is not None:
        reads = (lambda args: (ReadSpec(nbytes=region_bytes,
                                        region=shared_region,
                                        shared=True),))
    return TaskType(
        name=name,
        dfg=dot_product_dfg(name),
        kernel=lambda ctx, args: None,
        trips=lambda args: max(1, int(args["work"])),
        reads=reads,
        work_hint=WorkHint(lambda args: args["work"]),
    )


def program_of(tasks, name="hand-built"):
    return Program(name, {}, tasks)


# ---------------------------------------------------------- critical path

class TestCriticalPath:
    def test_after_chain_is_serial(self):
        tt = make_type()
        a = tt.instantiate({"work": 10})
        b = tt.instantiate({"work": 20}, after=[a])
        c = tt.instantiate({"work": 30}, after=[b])
        graph = recover_structure(program_of([a, b, c]))
        cp = critical_path(graph)
        assert cp.work == 60
        assert cp.length == 3
        assert cp.parallelism == pytest.approx(1.0)
        assert cp.speedup_bound(8) == pytest.approx(1.0)

    def test_stream_chain_pipelines(self):
        # Streamed stages overlap: the span is one stage, not the sum.
        tt = make_type()
        a = tt.instantiate({"work": 10})
        b = tt.instantiate({"work": 10}, stream_from=[a])
        c = tt.instantiate({"work": 10}, stream_from=[b])
        cp = critical_path(recover_structure(program_of([a, b, c])))
        assert cp.work == 10
        assert cp.parallelism == pytest.approx(3.0)

    def test_stream_consumer_cannot_finish_before_producer(self):
        # A cheap consumer of an expensive stream drains when the producer
        # does, so the span is the producer's work, not the consumer's.
        tt = make_type()
        a = tt.instantiate({"work": 100})
        b = tt.instantiate({"work": 1}, stream_from=[a])
        cp = critical_path(recover_structure(program_of([a, b])))
        assert cp.work == 100

    def test_diamond(self):
        tt = make_type()
        root = tt.instantiate({"work": 10})
        left = tt.instantiate({"work": 5}, after=[root])
        right = tt.instantiate({"work": 20}, after=[root])
        join = tt.instantiate({"work": 3}, after=[left, right])
        graph = recover_structure(program_of([root, left, right, join]))
        cp = critical_path(graph)
        assert cp.work == 33  # root -> right -> join
        assert list(cp.task_names) == [root.name, right.name, join.name]
        assert cp.total_work == 38
        assert cp.parallelism == pytest.approx(38 / 33)

    def test_fan_out_bound_by_heaviest_leaf(self):
        tt = make_type()
        root = tt.instantiate({"work": 4})
        leaves = [tt.instantiate({"work": w}, after=[root])
                  for w in (1, 2, 50, 3)]
        cp = critical_path(recover_structure(program_of([root] + leaves)))
        assert cp.work == 54
        assert cp.length == 2

    def test_spawned_children_overlap_spawner(self):
        # SPAWN edges gate on the parent's *start*: a spawned child is in
        # flight while its (heavy) spawner still runs.
        child_type = make_type("child")

        def kernel(ctx, args):
            for _ in range(3):
                ctx.spawn(child_type, {"work": 5})

        root_type = TaskType(
            name="root", dfg=dot_product_dfg("root"), kernel=kernel,
            trips=lambda args: 100,
            work_hint=WorkHint(lambda args: args["work"]))
        graph = recover_structure(
            program_of([root_type.instantiate({"work": 100})]))
        assert len(graph.edges_of_kind(EdgeKind.SPAWN)) == 3
        cp = critical_path(graph)
        assert cp.work == 100  # children hide under the root's work
        assert cp.total_work == 115

    def test_empty_speedup_bound_clamps_to_lanes(self):
        tt = make_type()
        tasks = [tt.instantiate({"work": 1}) for _ in range(64)]
        cp = critical_path(recover_structure(program_of(tasks)))
        assert cp.parallelism == pytest.approx(64.0)
        assert cp.speedup_bound(8) == 8.0
        assert cp.speedup_bound(128) == pytest.approx(64.0)


# ---------------------------------------------------------- analyses

class TestAnalyses:
    def test_phase_profile_matches_depths(self):
        # Phases group by spawn depth, so the joiner must be spawned by a
        # kernel (directly instantiated initial tasks all sit at depth 0).
        tt = make_type()

        def kernel(ctx, args):
            ctx.spawn(tt, {"work": 2},
                      after=[ctx.task] + list(args["join_with"]))

        spawner = TaskType(
            name="r", dfg=dot_product_dfg("r"), kernel=kernel,
            trips=lambda args: 1,
            work_hint=WorkHint(lambda args: args["work"]))
        b = tt.instantiate({"work": 6})
        a = spawner.instantiate({"work": 4, "join_with": [b]})
        profile = parallelism_profile(
            recover_structure(program_of([a, b])))
        assert [p.task_count for p in profile] == [2, 1]
        assert profile[0].work == 10
        assert profile[0].max_task_work == 6
        assert profile[1].balance == pytest.approx(1.0)

    def test_work_histogram_log2_bins(self):
        tt = make_type()
        tasks = [tt.instantiate({"work": w}) for w in (0, 1, 2, 3, 8, 9)]
        hist = dict(work_histogram(recover_structure(program_of(tasks))))
        assert hist == {-1: 1, 0: 1, 1: 2, 3: 2}

    def test_sharing_sets_by_region_name(self):
        shared = make_type("s", shared_region="table", region_bytes=512)
        other = make_type("o", shared_region="aux", region_bytes=128)
        private = make_type("p")
        tasks = [shared.instantiate({"work": 1}) for _ in range(3)] + \
                [other.instantiate({"work": 1})] + \
                [private.instantiate({"work": 1})]
        sets = sharing_sets(recover_structure(program_of(tasks)))
        assert [s.region for s in sets] == ["aux", "table"]
        by_region = {s.region: s for s in sets}
        assert by_region["table"].degree == 3
        assert by_region["table"].duplicate_bytes == 3 * 512
        assert by_region["aux"].degree == 1

    def test_summary_is_pure_data_and_picklable(self):
        graph = recover_structure(
            get_workload("micro-shared").build_program())
        summary = summarize(graph)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        assert clone.tasks == graph.task_count
        assert clone.total_work == graph.total_work
        assert clone.sharing_degrees == \
            {s.region: s.degree for s in summary.sharing}
        assert clone.speedup_bound(4) <= 4.0

    def test_render_mentions_critical_path_and_typed_edges(self):
        graph = recover_structure(
            get_workload("micro-chain").build_program())
        text = graph_summary(graph)
        assert "critical path" in text
        assert "speedup bound" in text
        dot = graph_dot(graph)
        assert "digraph taskgraph" in dot
        assert "penwidth=2" in dot  # stream edges rendered


# ---------------------------------------------------------- validation

class TestValidation:
    def test_dangling_after_raises_diagnostic(self):
        # The legacy expansion accepted this silently; the runtimes then
        # stalled waiting for a producer that never runs.
        tt = make_type()
        ghost = tt.instantiate({"work": 1})  # never added to the program
        task = tt.instantiate({"work": 1}, after=[ghost])
        with pytest.raises(GraphValidationError, match="never"):
            recover_structure(program_of([task]))

    def test_dangling_stream_raises(self):
        tt = make_type()
        ghost = tt.instantiate({"work": 1})
        task = tt.instantiate({"work": 1}, stream_from=[ghost])
        with pytest.raises(GraphValidationError, match="stream_from"):
            recover_structure(program_of([task]))

    def test_legacy_expansion_accepts_dangling_silently(self):
        # Documents the failure mode validate() exists to close.
        tt = make_type()
        ghost = tt.instantiate({"work": 1})
        task = tt.instantiate({"work": 1}, after=[ghost])
        expanded = expand_program(program_of([task]))
        assert expanded.task_count == 1  # no error, no ghost

    def test_duplicate_task_raises(self):
        tt = make_type()
        task = tt.instantiate({"work": 1})
        with pytest.raises(GraphValidationError, match="more than once"):
            recover_structure(program_of([task, task]))

    def test_cycle_raises(self):
        tt = make_type()
        a = tt.instantiate({"work": 1})
        b = tt.instantiate({"work": 1}, after=[a])
        a.after.append(b)  # forge the back edge
        with pytest.raises(GraphValidationError, match="cycle"):
            recover_structure(program_of([a, b]))

    def test_nan_work_raises(self):
        tt = make_type()
        task = tt.instantiate({"work": float("nan")})
        with pytest.raises(GraphValidationError, match="work"):
            recover_structure(program_of([task]))

    def test_validate_false_skips_checks(self):
        tt = make_type()
        ghost = tt.instantiate({"work": 1})
        task = tt.instantiate({"work": 1}, after=[ghost])
        graph = recover_structure(program_of([task]), validate=False)
        assert graph.task_count == 1


# ---------------------------------------------------------- view equivalence

class TestLegacyViews:
    @pytest.mark.parametrize("name", workload_names())
    def test_as_expanded_matches_legacy_on_workload(self, name):
        """ExpandedProgram views over the IR equal the legacy output on
        every registered workload (task ids differ per fresh build, so
        compare by type name, depth, args, and phase shape)."""
        legacy = expand_program(get_workload(name).build_program())
        view = recover_structure(
            get_workload(name).build_program()).as_expanded()
        assert view.task_count == legacy.task_count
        assert view.total_work == legacy.total_work
        assert [(t.type.name, t.depth, t.args) for t in view.tasks] == \
            [(t.type.name, t.depth, t.args) for t in legacy.tasks]
        assert [len(p) for p in view.phases] == \
            [len(p) for p in legacy.phases]
        assert [[t.type.name for t in p] for p in view.phases] == \
            [[t.type.name for t in p] for p in legacy.phases]

    def test_topological_order_respects_all_edges(self):
        graph = recover_structure(get_workload("bfs").build_program())
        position = {t.task_id: i
                    for i, t in enumerate(graph.topological_order())}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst], edge

    def test_graph_basic_queries(self):
        graph = recover_structure(
            get_workload("micro-uniform").build_program())
        assert len(graph) == graph.task_count == len(graph.tasks)
        first = graph.tasks[0]
        assert graph.node(first.task_id) is first

    def test_initial_tasks_with_deps_land_in_later_phases(self):
        """Regression: an *initial* task carrying an explicit ``after``
        or ``stream_from`` edge must sit strictly below its producer in
        the phase grouping — otherwise the static baseline co-schedules a
        consumer with the producer it waits on (a dependence-legality
        violation the sanitizer catches)."""
        tt = make_type()
        a = tt.instantiate({"work": 8})
        b = tt.instantiate({"work": 8}, after=[a])
        c = tt.instantiate({"work": 8}, stream_from=[b])
        assert (a.depth, b.depth, c.depth) == (0, 1, 2)
        for expanded in (expand_program(program_of([a, b, c])),
                         recover_structure(
                             program_of([a, b, c])).as_expanded()):
            phase_of = {t.task_id: i
                        for i, phase in enumerate(expanded.phases)
                        for t in phase}
            assert phase_of[a.task_id] < phase_of[b.task_id]
            assert phase_of[b.task_id] < phase_of[c.task_id]


# ------------------------------------------------- sharing vs the machine

class TestSharingAgainstSimulator:
    def test_mcast_counters_account_for_every_reader(self):
        """With multicast on, every shared-read request is a fetch, a hit,
        or a coalesced join — summed, they equal the recovered sharing
        degrees."""
        workload = SharedReadTasks(num_tasks=24, region_bytes=4096)
        summary = structure_summary(workload)
        degrees = sum(s.degree for s in summary.sharing)
        assert degrees > 0
        result = Delta(default_delta_config(lanes=4)).run(
            workload.build_program())
        m = result.metrics.mcast
        assert m.fetches + m.hits + m.coalesced == degrees

    def test_static_duplicate_bytes_equal_sharing_sets(self):
        """The static baseline re-fetches each shared region once per
        reader; its counter equals the IR's duplicate-byte analysis."""
        workload = SharedReadTasks(num_tasks=16, region_bytes=2048)
        summary = structure_summary(workload)
        result = StaticParallel(default_baseline_config(lanes=4)).run(
            workload.build_program())
        assert result.metrics.static.duplicate_shared_bytes == \
            summary.duplicate_shared_bytes
        assert summary.duplicate_shared_bytes == \
            sum(s.nbytes * s.degree for s in summary.sharing)


# ---------------------------------------------------------- structure cache

class TestStructureCache:
    def test_miss_then_hit(self, tmp_path):
        cache = StructureCache(tmp_path)
        workload = get_workload("micro-uniform")
        first = structure_summary(workload, cache=cache)
        assert (cache.misses, cache.stores) == (1, 1)
        second = structure_summary(workload, cache=cache)
        assert cache.hits == 1
        assert second == first
        assert len(cache) == 1

    def test_different_workload_params_different_keys(self, tmp_path):
        cache = StructureCache(tmp_path)
        a = cache.key_for(SharedReadTasks(num_tasks=8))
        b = cache.key_for(SharedReadTasks(num_tasks=9))
        assert a != b

    def test_corrupted_entry_dropped_and_recomputed(self, tmp_path):
        cache = StructureCache(tmp_path)
        workload = get_workload("micro-uniform")
        structure_summary(workload, cache=cache)
        # Entries are sharded: <root>/structure/<digest prefix>/<key>.pkl.
        (entry,) = tmp_path.rglob("*.pkl")
        entry.write_bytes(b"not a pickle")
        summary = structure_summary(workload, cache=cache)
        assert cache.misses == 2  # cold miss + corruption miss
        assert summary.tasks > 0
        assert not entry.exists() or cache.get(cache.key_for(workload))

    def test_foreign_payload_rejected(self, tmp_path):
        cache = StructureCache(tmp_path)
        key = "0" * 16
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"fingerprint": "x", "summary": ["not-a-summary"]}))
        assert cache.get(key) is None

    def test_clear_and_stats(self, tmp_path):
        cache = StructureCache(tmp_path)
        structure_summary(get_workload("micro-uniform"), cache=cache)
        structure_summary(get_workload("micro-skewed"), cache=cache)
        assert len(cache) == 2
        assert "structure cache" in cache.stats()
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_code_version_change_invalidates_keys(self, tmp_path,
                                                  monkeypatch):
        import repro.graph.cache as cache_mod
        cache = StructureCache(tmp_path)
        workload = get_workload("micro-uniform")
        old = cache.key_for(workload)
        monkeypatch.setattr(cache_mod, "code_version",
                            lambda: "graph-layer-edited")
        assert cache.key_for(workload) != old

    def test_graph_layer_is_covered_by_the_digest(self):
        """Editing repro/graph/ must invalidate BOTH caches: the shared
        code-version digest walks every repro source file."""
        from repro.util.codebase import source_files
        covered = {p.as_posix() for p in source_files()}
        for module in ("graph/__init__.py", "graph/ir.py",
                       "graph/analyses.py", "graph/cache.py",
                       "graph/render.py"):
            assert any(path.endswith(f"repro/{module}")
                       for path in covered), \
                f"repro/{module} missing from code-version digest"

    def test_graph_edit_changes_digest(self, tmp_path):
        from repro.util.codebase import digest_tree
        (tmp_path / "graph").mkdir()
        source = tmp_path / "graph" / "ir.py"
        source.write_text("EDGE_KINDS = 3\n")
        before = digest_tree(tmp_path)
        source.write_text("EDGE_KINDS = 4\n")
        assert digest_tree(tmp_path) != before

    def test_default_root_is_structure_subdir(self, tmp_path, monkeypatch):
        """The structure cache must not share a directory with the eval
        result cache (whose clear()/len() glob the root)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval.cache import EvalCache
        scache = StructureCache()
        assert scache.root == tmp_path / "structure"
        structure_summary(get_workload("micro-uniform"), cache=scache)
        assert len(EvalCache()) == 0  # eval cache sees none of it
        assert EvalCache().clear() == 0
        assert len(scache) == 1
