"""Tests for DOT/ASCII visualization (repro.core.visualize)."""

import pytest

from repro.arch.config import FabricConfig
from repro.arch.dfg import dot_product_dfg, merge_dfg
from repro.arch.mapper import Mapper
from repro.core.program import expand_program
from repro.core.visualize import dfg_dot, mapping_ascii, task_graph_dot
from repro.workloads.mergesort import MergesortWorkload
from repro.workloads.synthetic import SpawnTree


def test_task_graph_dot_structure():
    expanded = expand_program(
        MergesortWorkload(n=512, leaf=128).build_program())
    dot = task_graph_dot(expanded)
    assert dot.startswith("digraph taskgraph {")
    assert dot.rstrip().endswith("}")
    # Every task appears as a node.
    for task in expanded.tasks:
        assert f"t{task.task_id} [" in dot
    # Stream dependences render with heavy edges.
    assert "penwidth=2" in dot


def test_task_graph_dot_after_edges_dashed():
    expanded = expand_program(SpawnTree(depth=2).build_program())
    dot = task_graph_dot(expanded)
    # Spawn trees have no after/stream edges, only nodes.
    assert "style=dashed" not in dot


def test_task_graph_dot_rejects_huge_graphs():
    expanded = expand_program(SpawnTree(depth=2).build_program())
    with pytest.raises(ValueError, match="render a smaller"):
        task_graph_dot(expanded, max_tasks=3)


def test_dfg_dot_structure():
    dot = dfg_dot(dot_product_dfg())
    assert "digraph" in dot
    assert "parallelogram" in dot      # MEM nodes
    assert "ellipse" in dot            # MUL node
    assert 'label="d=1"' in dot        # recurrence edge


def test_dfg_dot_plain_edges():
    dot = dfg_dot(merge_dfg())
    assert "->" in dot


def test_mapping_ascii_contains_all_nodes():
    dfg = dot_product_dfg()
    mapping = Mapper(FabricConfig()).map(dfg)
    art = mapping_ascii(dfg, mapping)
    assert f"II={mapping.ii}" in art
    for node_id in mapping.placement:
        assert f"{node_id}={dfg.nodes[node_id].name}" in art


def test_mapping_ascii_grid_dimensions():
    dfg = dot_product_dfg()
    mapping = Mapper(FabricConfig(rows=4, cols=4)).map(dfg)
    art = mapping_ascii(dfg, mapping)
    grid_lines = [l for l in art.splitlines()
                  if l.startswith("  ") and "legend" not in l]
    assert len(grid_lines) <= 4
